//! Golden bit-identity tests for the scratch-arena entry points.
//!
//! The hot-path contract is that `run_with_scratch` produces the exact
//! same bits as `run` no matter what a reused scratch held before the
//! call: a dirty arena — previously sized for a different population,
//! filled by different protocols — must be invisible in the output.
//! Each engine gets a golden test (fresh vs deliberately dirtied
//! scratch, bit-equal floats) and a proptest that replays random
//! protocol/seed sequences through one shared arena and checks every
//! run against a fresh-scratch reference.

use proptest::prelude::*;

use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::swarm::{simulate, simulate_with_scratch, BtScratch};
use dsa_gossip::engine::{GossipConfig, GossipScratch};
use dsa_gossip::protocol::GossipProtocol;
use dsa_reputation::engine::{RepConfig, RepScratch};
use dsa_swarm::engine::{run, run_with_scratch, SimConfig, SwarmScratch};
use dsa_swarm::presets;
use dsa_workloads::bandwidth::BandwidthDist;

/// Bit-level equality for float vectors: `==` would accept `-0.0 == 0.0`
/// and reject NaN, neither of which is the invariant under test.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x} vs {y} differ in bits"
        );
    }
}

// ---------------------------------------------------------------- swarm

fn swarm_cfg(peers: usize, rounds: usize) -> SimConfig {
    SimConfig {
        peers,
        rounds,
        ..SimConfig::default()
    }
}

#[test]
fn swarm_dirty_scratch_is_bit_identical() {
    let protos = [
        presets::bittorrent(),
        presets::sort_s(),
        presets::freerider(),
    ];
    let cfg = swarm_cfg(20, 60);
    let assignment: Vec<usize> = (0..cfg.peers).map(|i| i % protos.len()).collect();

    let golden = run(&protos, &assignment, &cfg, 11);

    // Dirty the arena with a larger and then a smaller population, under
    // different protocols and seeds, before the run under test.
    let mut scratch = SwarmScratch::default();
    let big: Vec<usize> = vec![0; 33];
    run_with_scratch(
        &[presets::birds()],
        &big,
        &swarm_cfg(33, 40),
        5,
        &mut scratch,
    );
    run_with_scratch(
        &[presets::random_rank()],
        &[0, 0, 0, 0, 0],
        &swarm_cfg(5, 25),
        6,
        &mut scratch,
    );

    let dirty = run_with_scratch(&protos, &assignment, &cfg, 11, &mut scratch);
    assert_bits_eq(&golden.utilities, &dirty.utilities, "swarm utilities");
    assert_bits_eq(&golden.capacities, &dirty.capacities, "swarm capacities");
    assert_eq!(golden, dirty, "swarm outcome");
}

// --------------------------------------------------------------- gossip

fn gossip_cfg(nodes: usize, rounds: usize) -> GossipConfig {
    GossipConfig {
        nodes,
        rounds,
        ..GossipConfig::default()
    }
}

#[test]
fn gossip_dirty_scratch_is_bit_identical() {
    let protos: Vec<GossipProtocol> = GossipProtocol::all().take(3).collect();
    let cfg = gossip_cfg(16, 30);
    let assignment: Vec<usize> = (0..cfg.nodes).map(|i| i % protos.len()).collect();

    let golden = dsa_gossip::engine::run(&protos, &assignment, &cfg, 9);

    let mut scratch = GossipScratch::default();
    let big: Vec<usize> = vec![0; 25];
    dsa_gossip::engine::run_with_scratch(
        &[GossipProtocol::baseline()],
        &big,
        &gossip_cfg(25, 50),
        3,
        &mut scratch,
    );
    dsa_gossip::engine::run_with_scratch(
        &[GossipProtocol::baseline()],
        &[0, 0, 0, 0],
        &gossip_cfg(4, 12),
        4,
        &mut scratch,
    );

    let dirty = dsa_gossip::engine::run_with_scratch(&protos, &assignment, &cfg, 9, &mut scratch);
    assert_bits_eq(&golden, &dirty, "gossip deliveries");
}

// ----------------------------------------------------------- reputation

fn rep_cfg(peers: usize, rounds: usize) -> RepConfig {
    RepConfig {
        peers,
        rounds,
        ..RepConfig::default()
    }
}

#[test]
fn rep_dirty_scratch_is_bit_identical() {
    let protos = [
        dsa_reputation::presets::bartercast(),
        dsa_reputation::presets::eigentrust(),
        dsa_reputation::presets::freerider(),
    ];
    let cfg = rep_cfg(12, 40);
    let assignment: Vec<usize> = (0..cfg.peers).map(|i| i % protos.len()).collect();

    let golden = dsa_reputation::engine::run(&protos, &assignment, &cfg, 13);

    let mut scratch = RepScratch::default();
    let big: Vec<usize> = vec![0; 20];
    dsa_reputation::engine::run_with_scratch(
        &[dsa_reputation::presets::private_tft()],
        &big,
        &rep_cfg(20, 30),
        1,
        &mut scratch,
    );
    dsa_reputation::engine::run_with_scratch(
        &[dsa_reputation::presets::whitewasher()],
        &[0, 0, 0],
        &rep_cfg(3, 15),
        2,
        &mut scratch,
    );

    let dirty =
        dsa_reputation::engine::run_with_scratch(&protos, &assignment, &cfg, 13, &mut scratch);
    assert_bits_eq(&golden, &dirty, "rep utilities");
}

// ---------------------------------------------------------------- btsim

fn bt_cfg(leechers: usize) -> BtConfig {
    BtConfig {
        leechers,
        bandwidth: BandwidthDist::Constant(32.0),
        ..BtConfig::tiny()
    }
}

#[test]
fn btsim_dirty_scratch_is_bit_identical() {
    let kinds = vec![
        ClientKind::BitTorrent,
        ClientKind::BitTorrent,
        ClientKind::RandomRank,
        ClientKind::SortS,
        ClientKind::BitTorrent,
        ClientKind::LoyalWhenNeeded,
    ];
    let cfg = bt_cfg(kinds.len());

    let golden = simulate(&kinds, &cfg, 17);

    let mut scratch = BtScratch::default();
    simulate_with_scratch(&[ClientKind::RandomRank; 10], &bt_cfg(10), 2, &mut scratch);
    simulate_with_scratch(
        &[ClientKind::BitTorrent, ClientKind::BitTorrent],
        &bt_cfg(2),
        3,
        &mut scratch,
    );

    let dirty = simulate_with_scratch(&kinds, &cfg, 17, &mut scratch);
    assert_eq!(golden, dirty, "btsim outcome");
}

// ------------------------------------------------------------- proptest

/// One step of a random engine workload: which protocol mix, what
/// population/round shape, which seed.
#[derive(Debug, Clone)]
struct Step {
    proto: usize,
    peers: usize,
    rounds: usize,
    seed: u64,
}

fn step_strategy(
    protos: usize,
    max_peers: usize,
    max_rounds: usize,
) -> impl Strategy<Value = Step> {
    (0..protos, 3..max_peers, 5..max_rounds, 0u64..1000).prop_map(|(proto, peers, rounds, seed)| {
        Step {
            proto,
            peers,
            rounds,
            seed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying any sequence of swarm runs through one shared arena
    /// yields, at every step, the bits a fresh arena would produce: no
    /// state leaks across runs, whatever shapes came before.
    #[test]
    fn swarm_scratch_never_leaks_across_runs(
        steps in proptest::collection::vec(step_strategy(3, 14, 30), 1..5)
    ) {
        let protos = [presets::bittorrent(), presets::sort_s(), presets::freerider()];
        let mut shared = SwarmScratch::default();
        for step in steps {
            let cfg = swarm_cfg(step.peers, step.rounds);
            let assignment = vec![step.proto; step.peers];
            let reused = run_with_scratch(&protos, &assignment, &cfg, step.seed, &mut shared);
            let fresh = run_with_scratch(
                &protos,
                &assignment,
                &cfg,
                step.seed,
                &mut SwarmScratch::default(),
            );
            // Field-wise bit comparison: an empty protocol group has a
            // NaN group mean, and NaN != NaN under PartialEq even when
            // the bits agree.
            prop_assert_eq!(&reused.assignment, &fresh.assignment);
            prop_assert_eq!(reused.throughput.to_bits(), fresh.throughput.to_bits());
            for (a, b) in reused.utilities.iter().zip(&fresh.utilities) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in reused.capacities.iter().zip(&fresh.capacities) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in reused.group_means.iter().zip(&fresh.group_means) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Same invariant for the reputation engine.
    #[test]
    fn rep_scratch_never_leaks_across_runs(
        steps in proptest::collection::vec(step_strategy(3, 10, 20), 1..5)
    ) {
        let protos = [
            dsa_reputation::presets::bartercast(),
            dsa_reputation::presets::eigentrust(),
            dsa_reputation::presets::freerider(),
        ];
        let mut shared = RepScratch::default();
        for step in steps {
            let cfg = rep_cfg(step.peers, step.rounds);
            let assignment = vec![step.proto; step.peers];
            let reused = dsa_reputation::engine::run_with_scratch(
                &protos, &assignment, &cfg, step.seed, &mut shared,
            );
            let fresh = dsa_reputation::engine::run_with_scratch(
                &protos, &assignment, &cfg, step.seed, &mut RepScratch::default(),
            );
            for (a, b) in reused.iter().zip(&fresh) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Same invariant for the gossip engine.
    #[test]
    fn gossip_scratch_never_leaks_across_runs(
        steps in proptest::collection::vec(step_strategy(3, 12, 24), 1..5)
    ) {
        let protos: Vec<GossipProtocol> = GossipProtocol::all().take(3).collect();
        let mut shared = GossipScratch::default();
        for step in steps {
            let cfg = gossip_cfg(step.peers, step.rounds);
            let assignment = vec![step.proto; step.peers];
            let reused = dsa_gossip::engine::run_with_scratch(
                &protos, &assignment, &cfg, step.seed, &mut shared,
            );
            let fresh = dsa_gossip::engine::run_with_scratch(
                &protos, &assignment, &cfg, step.seed, &mut GossipScratch::default(),
            );
            for (a, b) in reused.iter().zip(&fresh) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Same invariant for the piece-level simulator (population shape
    /// varies; rounds field doubles as a client-mix selector).
    #[test]
    fn btsim_scratch_never_leaks_across_runs(
        steps in proptest::collection::vec(step_strategy(ClientKind::ALL.len(), 8, 24), 1..4)
    ) {
        let mut shared = BtScratch::default();
        for step in steps {
            let cfg = bt_cfg(step.peers);
            let kinds = vec![ClientKind::ALL[step.proto]; step.peers];
            let reused = simulate_with_scratch(&kinds, &cfg, step.seed, &mut shared);
            let fresh = simulate_with_scratch(&kinds, &cfg, step.seed, &mut BtScratch::default());
            prop_assert_eq!(reused, fresh);
        }
    }
}
