//! The journal-driven perf gate, exercised against the checked-in
//! fixture journal (`tests/fixtures/journal-regress.jsonl`): five
//! steady-state `experiments profile` records followed by one with a
//! planted ~50% regression in `swarm.rounds` self time and wall clock.
//!
//! CI runs the same fixture through the CLI
//! (`dsa obs regress --journal ... --threshold 25`) and asserts the
//! non-zero exit; these tests pin the underlying verdicts so a silent
//! detector change cannot turn the CI assertion into a tautology.
//!
//! A second fixture (`journal-regress-mem.jsonl`) plants a ~50% peak-RSS
//! blow-up while every *time* series stays steady — the memory gate must
//! fail it on `mem.rss_peak_bytes` alone. The time-only fixture above
//! carries no `mem` blocks at all, pinning the other direction: runs
//! without memory telemetry never trip the memory gate.

use dsa_obs::journal::JournalRecord;
use dsa_obs::regress::{self, RegressConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn fixture() -> (Vec<JournalRecord>, usize) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/journal-regress.jsonl");
    dsa_obs::journal::read_file(&path).expect("fixture journal parses")
}

#[test]
fn fixture_parses_as_one_profile_cohort() {
    let (records, skipped) = fixture();
    assert_eq!(skipped, 0, "fixture must contain no corrupt lines");
    assert_eq!(records.len(), 6);
    for r in &records {
        assert_eq!(r.meta.binary, "experiments");
        assert_eq!(r.meta.command, "experiments profile");
        assert_eq!(r.meta.scale.as_deref(), Some("smoke"));
        assert!(r.spans.contains_key("swarm.rounds"));
    }
}

#[test]
fn planted_regression_fails_the_gate_at_threshold_25() {
    let (records, _) = fixture();
    let cfg = RegressConfig {
        threshold_pct: 25.0,
        ..RegressConfig::default()
    };
    let report = regress::check(&records, &BTreeMap::new(), &cfg);
    assert!(!report.ok(), "planted regression must fail: {report:?}");
    // Both the span self time and the wall clock blew up by ~50%.
    let kinds: Vec<(&str, &str)> = report
        .regressions
        .iter()
        .map(|r| (r.kind, r.name.as_str()))
        .collect();
    assert!(kinds.contains(&("span", "swarm.rounds")), "{kinds:?}");
    assert!(kinds.contains(&("wall", "wall_ms")), "{kinds:?}");
    let span = report
        .regressions
        .iter()
        .find(|r| r.name == "swarm.rounds")
        .unwrap();
    assert!(span.pct > 45.0 && span.pct < 55.0, "pct = {}", span.pct);
    // The untouched engine stays clean.
    assert!(!kinds.iter().any(|(_, n)| *n == "gossip.rounds"));
}

#[test]
fn steady_state_prefix_passes_the_same_gate() {
    let (records, _) = fixture();
    let cfg = RegressConfig {
        threshold_pct: 25.0,
        ..RegressConfig::default()
    };
    let report = regress::check(&records[..5], &BTreeMap::new(), &cfg);
    assert!(report.ok(), "steady state must pass: {report:?}");
    assert!(
        report.compared > 0,
        "the pass must come from real comparisons"
    );
}

fn mem_fixture() -> (Vec<JournalRecord>, usize) {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/journal-regress-mem.jsonl");
    dsa_obs::journal::read_file(&path).expect("mem fixture journal parses")
}

#[test]
fn planted_rss_regression_fails_the_memory_gate_alone() {
    let (records, skipped) = mem_fixture();
    assert_eq!(skipped, 0, "mem fixture must contain no corrupt lines");
    assert_eq!(records.len(), 6);
    for r in &records {
        assert!(r.mem.is_some(), "every record carries a mem block");
    }
    let cfg = RegressConfig {
        threshold_pct: 25.0,
        ..RegressConfig::default()
    };
    let report = regress::check(&records, &BTreeMap::new(), &cfg);
    assert!(!report.ok(), "planted RSS blow-up must fail: {report:?}");
    let kinds: Vec<(&str, &str)> = report
        .regressions
        .iter()
        .map(|r| (r.kind, r.name.as_str()))
        .collect();
    assert!(kinds.contains(&("mem", "mem.rss_peak_bytes")), "{kinds:?}");
    // Time series are steady in this fixture: the failure must come from
    // the memory gate only, never from span/wall detectors.
    assert!(
        !kinds.iter().any(|(k, _)| *k == "span" || *k == "wall"),
        "{kinds:?}"
    );
    // Arena and allocation series are flat too — only peak RSS fires.
    assert!(
        !kinds.iter().any(|(_, n)| *n != "mem.rss_peak_bytes"),
        "{kinds:?}"
    );
    let mem = report
        .regressions
        .iter()
        .find(|r| r.name == "mem.rss_peak_bytes")
        .unwrap();
    assert!(mem.pct > 45.0 && mem.pct < 60.0, "pct = {}", mem.pct);
}

#[test]
fn steady_memory_prefix_passes_the_memory_gate() {
    let (records, _) = mem_fixture();
    let cfg = RegressConfig {
        threshold_pct: 25.0,
        ..RegressConfig::default()
    };
    let report = regress::check(&records[..5], &BTreeMap::new(), &cfg);
    assert!(report.ok(), "steady memory must pass: {report:?}");
    assert!(
        report.compared > 0,
        "the pass must come from real comparisons"
    );
}

#[test]
fn time_only_fixture_never_trips_the_memory_gate() {
    // The original fixture predates memory telemetry: no record carries a
    // mem block, and the planted *time* regression must still be the only
    // thing the gate reports — mem-less cohorts skip the memory gate.
    let (records, _) = fixture();
    assert!(records.iter().all(|r| r.mem.is_none()));
    let cfg = RegressConfig {
        threshold_pct: 25.0,
        ..RegressConfig::default()
    };
    let report = regress::check(&records, &BTreeMap::new(), &cfg);
    assert!(!report.ok());
    assert!(
        !report.regressions.iter().any(|r| r.kind == "mem"),
        "{report:?}"
    );
}

#[test]
fn diff_renders_the_regressed_pair_with_highlights() {
    let (records, _) = fixture();
    let out = dsa_obs::diff::render(&records[4], &records[5], 25.0);
    assert!(out.contains("swarm.rounds"), "{out}");
    assert!(out.contains('!'), "threshold marker missing:\n{out}");
    assert!(out.contains(&records[4].meta.run_id), "{out}");
    assert!(out.contains(&records[5].meta.run_id), "{out}");
}
