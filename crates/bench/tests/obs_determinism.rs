//! Metric determinism across thread counts, and trace-shape stability
//! across reruns.
//!
//! The observability layer promises that everything *counted* is a pure
//! function of the work, not of the scheduling: counters, span counts
//! and histogram totals must be bit-identical whether a sweep runs on 1
//! thread or 8. Durations are the explicit exception — they are
//! distributions, compared only structurally — and so is any instrument
//! tagged [`dsa_obs::DetClass::ThreadDependent`] at its recording site
//! (today: `parallel.worker_busy_ns`, whose sample count *is* the worker
//! count — one busy-time sample per worker; see `dsa_core::parallel`).
//! The exclusion below is by class tag, not by name, so new
//! thread-dependent instruments are exempted where they are recorded
//! instead of by editing this test. Lives in its own process so the
//! global obs registries are not shared with other test binaries; the
//! in-file lock serializes the tests themselves.

use dsa_core::cache::DomainSweep;
use dsa_core::domain::Effort;
use dsa_core::pra::PraConfig;
use dsa_core::tournament::OpponentSampling;
use dsa_obs::Snapshot;
use std::path::Path;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn config(threads: usize) -> PraConfig {
    PraConfig {
        performance_runs: 1,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(2),
        threads,
        seed: 0x5EED,
        ..PraConfig::default()
    }
}

/// Runs the full smoke sweep of the reputation domain (288 protocols)
/// with tracing on — compute + store on a cold cache, then one warm load
/// so the deterministic-value `cache.read_bytes`/`cache.write_bytes`
/// histograms both fill — and returns the registries it left behind.
fn traced_sweep(threads: usize, dir: &Path) -> Snapshot {
    let domain = dsa_reputation::adapter::register();
    let cfg = config(threads);
    dsa_obs::reset();
    dsa_obs::enable_trace();
    let sweep =
        DomainSweep::load_or_compute(&*domain, Effort::Smoke, &cfg, "smoke", dir).expect("sweep");
    DomainSweep::load(&sweep.key, dir)
        .expect("load")
        .expect("cache file present");
    dsa_obs::flush();
    let snap = dsa_obs::snapshot();
    dsa_obs::disable();
    snap
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsa-obs-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn counts_are_bit_identical_across_1_and_8_threads() {
    let _guard = LOCK.lock().unwrap();
    let (dir1, dir8) = (fresh_dir("t1"), fresh_dir("t8"));
    let one = traced_sweep(1, &dir1);
    let eight = traced_sweep(8, &dir8);

    // Counters are event counts only — the full maps must match.
    assert_eq!(one.counters, eight.counters);

    // Spans: same names, same invocation counts; durations may differ.
    let span_counts = |s: &Snapshot| -> Vec<(String, u64)> {
        s.spans
            .iter()
            .map(|(n, st)| (n.clone(), st.dur.count))
            .collect()
    };
    assert_eq!(span_counts(&one), span_counts(&eight));

    // Histograms: same names; totals match for every instrument the
    // recording site tagged Deterministic. ThreadDependent instruments
    // (count = worker count by design) are excluded by their class tag —
    // not by a hard-coded name list in this test.
    let names = |s: &Snapshot| -> Vec<String> { s.hists.keys().cloned().collect() };
    assert_eq!(names(&one), names(&eight));
    let mut thread_dependent = Vec::new();
    for (name, h1) in &one.hists {
        let h8 = &eight.hists[name];
        match dsa_obs::instrument_class(name) {
            dsa_obs::DetClass::ThreadDependent => {
                assert_ne!(h1.count, h8.count, "1 vs 8 workers must differ");
                thread_dependent.push(name.clone());
            }
            dsa_obs::DetClass::Deterministic => {
                assert_eq!(h1.count, h8.count, "sample count of {name}");
            }
        }
    }
    // Exactly one instrument carries the tag today; a new one showing up
    // here unannounced means a recording site opted out of determinism.
    assert_eq!(thread_dependent, ["parallel.worker_busy_ns"]);

    // The byte-size histograms observe deterministic values, so even
    // their buckets, sums and extrema are bit-identical.
    for name in ["cache.read_bytes", "cache.write_bytes"] {
        let (h1, h8) = (&one.hists[name], &eight.hists[name]);
        assert!(h1.count > 0, "{name} recorded nothing");
        assert_eq!(h1, h8, "{name} must be thread-count invariant");
    }

    // Gauges are last-value readings; only the instrument set is stable.
    let gauge_names = |s: &Snapshot| -> Vec<String> { s.gauges.keys().cloned().collect() };
    assert_eq!(gauge_names(&one), gauge_names(&eight));

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir8);
}

#[test]
fn trace_shape_is_stable_across_reruns() {
    let _guard = LOCK.lock().unwrap();
    let (a, b) = (fresh_dir("ra"), fresh_dir("rb"));
    let first = traced_sweep(0, &a);
    let second = traced_sweep(0, &b);
    // The rendered trace, stripped of durations, is identical run to
    // run — "stable modulo durations".
    assert_eq!(first.render_shape(), second.render_shape());
    assert_ne!(first.render_shape(), "");
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}
