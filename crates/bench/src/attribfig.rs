//! The `attribution` experiment: which design dimensions drive each
//! response, per domain — the Table 3 analysis generalized to every
//! registered domain and every measured response surface.
//!
//! For each requested response (`pra`, `attack`, `evolution`) and each
//! registered domain, loads the underlying sweeps through their stamped
//! caches, fits the per-axis attribution (`dsa-attribution`), renders
//! ASCII effect-size bars per dimension, the top pairwise interactions,
//! and one dimension-flip navigator demonstration per domain — then a
//! cross-domain "which dimension matters where" comparison and a summary
//! CSV at `results/attribution-<scale>.csv`. Derived tables cache at
//! `results/attrib-<domain>-<response>-<scale>.csv`.

use crate::scale::Scale;
use dsa_attribution::{
    attack_surface, evolution_surface, interaction_scan, navigate, pra_surface, AttribTable,
    DesignMatrix, ResponseKind, ResponseSurface,
};
use dsa_core::domain::DynDomain;
use dsa_stats::ascii;
use std::fmt::Write as _;
use std::path::Path;

/// Builds the response surface of `kind` for a domain at a scale, going
/// through the workspace's stamped sweep caches (PRA / attack / evo).
/// Configurations mirror the `attacks` and `evolution` experiments, so a
/// `results/` directory warmed by those experiments serves attributions
/// without re-simulating anything.
///
/// # Errors
///
/// Returns an error when a sweep cache is corrupt or unwritable.
pub fn build_surface(
    domain: &dyn DynDomain,
    kind: ResponseKind,
    scale: &Scale,
    out_dir: &Path,
) -> Result<ResponseSurface, String> {
    match kind {
        ResponseKind::Pra => pra_surface(domain, scale.effort(), &scale.pra, scale.name, out_dir),
        ResponseKind::Attack => {
            let models = dsa_attacks::register_builtin();
            let cfg = crate::attackfig::attack_config(scale, None);
            attack_surface(domain, &models, scale.effort(), &cfg, scale.name, out_dir)
        }
        ResponseKind::Evolution => {
            let cfg = crate::evofig::evo_config(scale);
            let candidates = dsa_evolution::default_candidates(domain);
            evolution_surface(
                domain,
                &candidates,
                scale.effort(),
                &cfg,
                scale.name,
                out_dir,
            )
        }
    }
}

/// Parses the `--response` list (comma-separated kind names).
///
/// # Errors
///
/// Returns a message naming the first unknown kind.
pub fn parse_responses(spec: &str) -> Result<Vec<ResponseKind>, String> {
    let mut out = Vec::new();
    for token in spec.split(',') {
        let token = token.trim();
        let kind = ResponseKind::by_name(token)
            .ok_or_else(|| format!("unknown response '{token}' (pra|attack|evolution)"))?;
        if !out.contains(&kind) {
            out.push(kind);
        }
    }
    if out.is_empty() {
        return Err("--response needs at least one of pra|attack|evolution".into());
    }
    Ok(out)
}

/// The displayed effect size of a dimension: partial η² from the full
/// model when the surface supports it, one-way η² otherwise (with the
/// fallback flagged by the caller).
fn effect_size(d: &dsa_attribution::DimEffect) -> f64 {
    if d.partial_eta_sq.is_finite() {
        d.partial_eta_sq
    } else {
        d.eta_sq
    }
}

/// Renders one domain's attribution table: per-axis R² line plus
/// effect-size bars per dimension (shared with `dsa <domain> attribute
/// fit`).
#[must_use]
pub fn render_table(table: &AttribTable) -> String {
    let mut out = String::new();
    for axis in &table.axes {
        if axis.r2.is_finite() {
            let _ = writeln!(
                out,
                "   {} — adj.R2 = {:.2} (R2 {:.2}, n = {}, main effects):",
                axis.axis, axis.adj_r2, axis.r2, axis.n
            );
        } else {
            let _ = writeln!(
                out,
                "   {} — no full regression on this surface (n = {}: too few rows \
                 or an aliased design); one-way η² only:",
                axis.axis, axis.n
            );
        }
        let entries: Vec<(String, f64, Option<f64>)> = axis
            .dims
            .iter()
            .map(|d| {
                let sig = if d.p_value.is_finite() && d.p_value < 0.001 {
                    " ***"
                } else {
                    ""
                };
                (
                    format!("{} ({} levels){sig}", d.name, d.levels),
                    effect_size(d),
                    None,
                )
            })
            .collect();
        for line in ascii::bars(&entries, 40).lines() {
            let _ = writeln!(out, "     {line}");
        }
    }
    out
}

/// Runs the full cross-domain attribution experiment.
///
/// # Errors
///
/// Returns an error when a sweep cache is corrupt or a CSV cannot be
/// written.
pub fn attribution(
    scale: &Scale,
    out_dir: &Path,
    responses: &[ResponseKind],
) -> Result<String, String> {
    let domains = crate::register_domains();
    let mut out = format!(
        "Variance attribution: which design dimensions drive each response (scale: {})\n",
        scale.name
    );
    let mut csv = String::from(
        "response,domain,axis,dimension,levels,eta_sq,partial_eta_sq,f_stat,p_value,r2,adj_r2,n\n",
    );
    for &kind in responses {
        let _ = writeln!(out, "\n==== response: {} ====", kind.name());
        let mut comparison = String::new();
        for domain in &domains {
            let surface = build_surface(&**domain, kind, scale, out_dir)?;
            // The interaction map and navigator need the live fits, so
            // compute them once up front and derive the cached summary
            // table from the same attributions (the stamped cache still
            // short-circuits the summary when warm).
            let dm = DesignMatrix::build(domain.space(), &surface.rows, scale.pra.threads);
            let axes = dsa_attribution::attribute_surface(&dm, &surface);
            let key = surface
                .base
                .clone()
                .with_attrib(dsa_attribution::fingerprint(&surface));
            let table = match AttribTable::load(&key, &surface.response, out_dir)? {
                Some(cached) => cached,
                None => {
                    let fresh = AttribTable::from_axes(&surface, &axes);
                    fresh.store(out_dir)?;
                    fresh
                }
            };
            let _ = writeln!(
                out,
                "\n-- {} ({} rows over {} protocols; sources {}, table {}: {}) --",
                domain.name(),
                surface.rows.len(),
                domain.size(),
                if surface.from_cache {
                    "from cache"
                } else {
                    "computed"
                },
                if table.from_cache {
                    "from cache"
                } else {
                    "computed"
                },
                table.path(out_dir).display()
            );
            out.push_str(&render_table(&table));

            for axis in &table.axes {
                for d in &axis.dims {
                    let _ = writeln!(
                        csv,
                        "{},{},{},{},{},{},{},{},{},{},{},{}",
                        kind.name(),
                        domain.name(),
                        dsa_core::results::quote_csv(&axis.axis),
                        dsa_core::results::quote_csv(&d.name),
                        d.levels,
                        d.eta_sq,
                        d.partial_eta_sq,
                        d.f_stat,
                        d.p_value,
                        axis.r2,
                        axis.adj_r2,
                        axis.n
                    );
                }
            }

            // Cross-domain comparison line: dimensions ranked by effect
            // on the first axis of this response.
            if let Some(axis) = table.axes.first() {
                let mut ranked: Vec<(&str, f64)> = axis
                    .dims
                    .iter()
                    .map(|d| (d.name.as_str(), effect_size(d)))
                    .collect();
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
                let _ = writeln!(
                    comparison,
                    "{:<8} ({}): {}",
                    domain.name(),
                    axis.axis,
                    ranked
                        .iter()
                        .map(|(n, e)| format!("{n} {e:.2}"))
                        .collect::<Vec<_>>()
                        .join(" > ")
                );
            }

            if let Some(first) = axes.iter().find(|a| a.fit.is_some()) {
                let y = &surface
                    .axes
                    .iter()
                    .find(|(n, _)| *n == first.axis)
                    .expect("axis present")
                    .1;
                let scan = interaction_scan(&dm, y);
                let top: Vec<String> = scan
                    .iter()
                    .take(3)
                    .filter(|i| i.delta_r2.is_finite())
                    .map(|i| {
                        format!(
                            "{}×{} ΔR²={:.3} (F={:.1}{})",
                            i.dim_a,
                            i.dim_b,
                            i.delta_r2,
                            i.f_stat,
                            if i.p_value < 0.001 { ", p<0.001" } else { "" }
                        )
                    })
                    .collect();
                if !top.is_empty() {
                    let _ = writeln!(
                        out,
                        "   top interactions ({}): {}",
                        first.axis,
                        top.join("; ")
                    );
                }
            }
            if kind == ResponseKind::Pra {
                if let Some((_, start)) = domain.presets().first() {
                    out.push_str(&navigator_demo(&**domain, &dm, &axes, &surface, *start));
                }
            }
        }
        let _ = writeln!(
            out,
            "\nwhich dimension matters where ({} response, first axis, effect sizes):",
            kind.name()
        );
        out.push_str(&comparison);
    }

    let path = out_dir.join(format!("attribution-{}.csv", scale.name));
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    std::fs::write(&path, csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    let _ = writeln!(
        out,
        "\nwrote {} ({} domains × {} responses)",
        path.display(),
        domains.len(),
        responses.len()
    );
    Ok(out)
}

/// One navigator demonstration: the best verified flip improving the
/// first axis while guarding the second, from the domain's first preset.
fn navigator_demo(
    domain: &dyn DynDomain,
    dm: &DesignMatrix,
    axes: &[dsa_attribution::AxisAttribution],
    surface: &ResponseSurface,
    start: usize,
) -> String {
    let (Some(improve), guard) = (axes.first(), axes.get(1)) else {
        return String::new();
    };
    let suggestions = navigate(
        domain.space(),
        dm,
        improve,
        guard,
        &surface.axes[0].1,
        surface.axes.get(1).map(|(_, y)| y.as_slice()),
        start,
        0.05,
        1,
    );
    let Some(f) = suggestions.first() else {
        return format!(
            "   navigator: no single flip from {} improves {} without hurting {}\n",
            domain.code(start),
            improve.axis,
            guard.map_or("(nothing)", |g| g.axis.as_str()),
        );
    };
    format!(
        "   navigator: from {} flip {} {}→{}: predicted Δ{} {:+.3} (measured {:+.3}), guard Δ {:+.3} (measured {:+.3}){}\n",
        domain.code(start),
        f.dim,
        f.from_level,
        f.to_level,
        improve.axis,
        f.predicted_improve,
        f.actual_improve,
        f.predicted_guard,
        f.actual_guard,
        if f.verified(0.05) { " [verified]" } else { " [NOT confirmed by the sweep]" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_list_parses_and_dedupes() {
        let kinds = parse_responses("pra,attack,pra").unwrap();
        assert_eq!(kinds, vec![ResponseKind::Pra, ResponseKind::Attack]);
        assert!(parse_responses("nonsense").is_err());
        assert!(parse_responses("").is_err());
    }

    /// The full experiment at smoke scale would sweep the swarm space;
    /// exercise the per-domain pipeline against gossip alone instead.
    #[test]
    fn gossip_attribution_surface_builds_and_caches() {
        let dir = std::env::temp_dir().join(format!("dsa-attribfig-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = Scale::smoke();
        let domain = dsa_gossip::adapter::register();
        let surface = build_surface(&*domain, ResponseKind::Pra, &scale, &dir).expect("surface");
        assert_eq!(surface.axes.len(), 3);
        let table = AttribTable::load_or_compute(&*domain, &surface, 0, &dir).expect("table");
        assert!(dir.join("attrib-gossip-pra-smoke.csv").exists());
        let rendered = render_table(&table);
        assert!(rendered.contains("adj.R2"));
        assert!(rendered.contains("Selection"));
        // Reload hits the cache.
        let again = AttribTable::load_or_compute(&*domain, &surface, 0, &dir).expect("cached");
        assert!(again.from_cache);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
