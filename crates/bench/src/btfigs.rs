//! Figures 9 and 10: the piece-level BitTorrent validation experiments.

use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::experiment::{fraction_series, homogeneous_runs};
use dsa_stats::ascii;
use dsa_stats::ci::ConfidenceInterval;
use std::fmt::Write as _;

/// One Figure 9 panel: client `a` vs client `b` across mixing fractions.
#[must_use]
pub fn fig9(a: ClientKind, b: ClientKind, runs: usize, config: &BtConfig, seed: u64) -> String {
    let series = fraction_series(a, b, runs, config, seed);
    let mut out = format!(
        "Figure 9 panel: {} vs {} — average download times (s), {} runs/point, 95% CI\n",
        a.name(),
        b.name(),
        runs
    );
    let _ = writeln!(out, "{:>10} {:>22} {:>22}", "frac(A)", a.name(), b.name());
    for p in &series {
        let fmt_ci = |ci: &Option<ConfidenceInterval>| {
            ci.map_or("-".to_string(), |c| {
                format!("{:.1} ± {:.1}", c.mean, c.half_width)
            })
        };
        let _ = writeln!(
            out,
            "{:>10.2} {:>22} {:>22}",
            p.fraction_a,
            fmt_ci(&p.a),
            fmt_ci(&p.b)
        );
    }
    // Headline comparisons the paper draws per panel.
    if let (Some(all_a), Some(all_b)) = (
        series.last().and_then(|p| p.a),
        series.first().and_then(|p| p.b),
    ) {
        let _ = writeln!(
            out,
            "homogeneous swarms: all-{} = {:.1}s, all-{} = {:.1}s{}",
            a.name(),
            all_a.mean,
            b.name(),
            all_b.mean,
            if all_a.overlaps(&all_b) {
                " (CIs overlap)"
            } else {
                " (difference significant)"
            }
        );
    }
    out
}

/// Figure 10: homogeneous performance of the five §5 clients.
#[must_use]
pub fn fig10(runs: usize, config: &BtConfig, seed: u64) -> String {
    let mut entries = Vec::new();
    let mut out = String::from("Figure 10: homogeneous average download times (s)\n");
    for kind in ClientKind::ALL {
        let times = homogeneous_runs(kind, runs, config, seed);
        let ci = ConfidenceInterval::ci95(&times);
        entries.push((kind.name().to_string(), ci.mean, Some(ci.half_width)));
    }
    out.push_str(&ascii::bars(&entries, 40));
    out.push_str("(paper: Sort-S and Birds fare best; Random performs as well as BitTorrent)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_workloads::bandwidth::BandwidthDist;

    fn cfg() -> BtConfig {
        BtConfig {
            bandwidth: BandwidthDist::Constant(32.0),
            ..BtConfig::tiny()
        }
    }

    #[test]
    fn fig9_renders_all_fractions() {
        let s = fig9(ClientKind::Birds, ClientKind::BitTorrent, 2, &cfg(), 1);
        for frac in ["0.00", "0.10", "0.25", "0.50", "0.75", "0.90", "1.00"] {
            assert!(s.contains(frac), "missing {frac}");
        }
        assert!(s.contains("Birds"));
        assert!(s.contains("homogeneous swarms"));
    }

    #[test]
    fn fig10_lists_every_client() {
        let s = fig10(2, &cfg(), 2);
        for kind in ClientKind::ALL {
            assert!(s.contains(kind.name()), "missing {}", kind.name());
        }
    }
}
