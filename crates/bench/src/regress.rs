//! Table 3: multiple linear regression of the PRA measures on the design
//! dimensions.
//!
//! Exactly the paper's model: numerical `h`, `k` enter as standardized
//! logs (`log(h̃)`, `log(k̃)`; we use `log(x+1)` since the space contains
//! h = 0 and k = 0 — see `DESIGN.md` §5), categorical dimensions enter as
//! dummies with baselines B1, C1, I1, R1 (the rows Table 3 omits).

use crate::sweep::SweepData;
use dsa_stats::encode::{log1p_standardized, NamedColumn};
use dsa_stats::ols::{fit, OlsFit};
use dsa_swarm::protocol::{Allocation, CandidateList, Ranking, StrangerPolicy, SwarmProtocol};
use std::fmt::Write as _;

/// Builds the paper's 12 predictor columns from the protocol list.
#[must_use]
pub fn predictors(protocols: &[SwarmProtocol]) -> Vec<NamedColumn> {
    let k: Vec<f64> = protocols
        .iter()
        .map(|p| f64::from(p.partner_slots))
        .collect();
    let h: Vec<f64> = protocols
        .iter()
        .map(|p| f64::from(p.stranger_slots))
        .collect();

    let mut cols = vec![
        NamedColumn::new("log(k~)", log1p_standardized(&k)),
        NamedColumn::new("log(h~)", log1p_standardized(&h)),
    ];

    // Stranger-policy dummies (baseline B1; h = 0 rows are all-zero, i.e.
    // treated as baseline-policy absences).
    for (policy, name) in [
        (StrangerPolicy::WhenNeeded, "B2"),
        (StrangerPolicy::Defect, "B3"),
    ] {
        cols.push(NamedColumn::new(
            name,
            protocols
                .iter()
                .map(|p| {
                    f64::from(u8::from(
                        p.stranger_slots > 0 && p.stranger_policy == policy,
                    ))
                })
                .collect(),
        ));
    }
    // Candidate-list dummy (baseline C1).
    cols.push(NamedColumn::new(
        "C2",
        protocols
            .iter()
            .map(|p| {
                f64::from(u8::from(
                    p.partner_slots > 0 && p.candidates == CandidateList::Tf2t,
                ))
            })
            .collect(),
    ));
    // Ranking dummies (baseline I1).
    for (ranking, name) in [
        (Ranking::Slowest, "I2"),
        (Ranking::Proximity, "I3"),
        (Ranking::Adaptive, "I4"),
        (Ranking::Loyal, "I5"),
        (Ranking::Random, "I6"),
    ] {
        cols.push(NamedColumn::new(
            name,
            protocols
                .iter()
                .map(|p| f64::from(u8::from(p.partner_slots > 0 && p.ranking == ranking)))
                .collect(),
        ));
    }
    // Allocation dummies (baseline R1).
    for (alloc, name) in [(Allocation::PropShare, "R2"), (Allocation::Freeride, "R3")] {
        cols.push(NamedColumn::new(
            name,
            protocols
                .iter()
                .map(|p| f64::from(u8::from(p.allocation == alloc)))
                .collect(),
        ));
    }
    cols
}

/// The three fitted models of Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Regression of Performance.
    pub performance: OlsFit,
    /// Regression of Robustness.
    pub robustness: OlsFit,
    /// Regression of Aggressiveness.
    pub aggressiveness: OlsFit,
}

/// Fits Table 3 from sweep data.
///
/// # Panics
///
/// Panics if the regression fails (cannot happen on the full space, whose
/// design matrix is full-rank by construction).
#[must_use]
pub fn table3(data: &SweepData) -> Table3 {
    let x = predictors(&data.protocols);
    let fit_for = |y: &[f64]| fit(&x, y).expect("full-rank design matrix");
    Table3 {
        performance: fit_for(&data.results.performance),
        robustness: fit_for(&data.results.robustness),
        aggressiveness: fit_for(&data.results.aggressiveness),
    }
}

impl Table3 {
    /// Renders the three-model table in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 3: multiple linear regression of PRA measures on design dimensions\n",
        );
        let _ = writeln!(
            out,
            "{:<12} | {:>9} {:>8} {:>5} | {:>9} {:>8} {:>5} | {:>9} {:>8} {:>5}",
            "", "Perf est", "t", "sig", "Rob est", "t", "sig", "Agg est", "t", "sig"
        );
        let _ = writeln!(
            out,
            "{:<12} | adj.R2 = {:<17.2} | adj.R2 = {:<16.2} | adj.R2 = {:.2}",
            "",
            self.performance.adj_r_squared,
            self.robustness.adj_r_squared,
            self.aggressiveness.adj_r_squared
        );
        for i in 0..self.performance.terms.len() {
            let p = &self.performance.terms[i];
            let r = &self.robustness.terms[i];
            let a = &self.aggressiveness.terms[i];
            let sig = |ok: bool| if ok { "OK" } else { "-" };
            let _ = writeln!(
                out,
                "{:<12} | {:>9.3} {:>8.2} {:>5} | {:>9.3} {:>8.2} {:>5} | {:>9.3} {:>8.2} {:>5}",
                p.name,
                p.estimate,
                p.t_value,
                sig(p.significant()),
                r.estimate,
                r.t_value,
                sig(r.significant()),
                a.estimate,
                a.t_value,
                sig(a.significant()),
            );
        }
        out
    }

    /// The estimate of a named term in a given model
    /// (`"performance" | "robustness" | "aggressiveness"`).
    #[must_use]
    pub fn estimate(&self, model: &str, term: &str) -> Option<f64> {
        let fit = match model {
            "performance" => &self.performance,
            "robustness" => &self.robustness,
            "aggressiveness" => &self.aggressiveness,
            _ => return None,
        };
        fit.terms
            .iter()
            .find(|t| t.name == term)
            .map(|t| t.estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::results::PraResults;

    /// Synthetic sweep whose measures follow known linear structure so the
    /// regression must recover the signs.
    fn synthetic() -> SweepData {
        let protocols: Vec<SwarmProtocol> = SwarmProtocol::all().collect();
        let perf_raw: Vec<f64> = protocols
            .iter()
            .map(|p| {
                let mut v: f64 = 0.7;
                if p.allocation == Allocation::Freeride {
                    v -= 0.5;
                }
                if p.stranger_slots > 0 && p.stranger_policy == StrangerPolicy::Defect {
                    v -= 0.2;
                }
                v += 0.05 * f64::from(p.stranger_slots);
                v.max(0.0)
            })
            .collect();
        let perf = dsa_stats::describe::normalize_by_max(&perf_raw);
        let rob: Vec<f64> = protocols
            .iter()
            .map(|p| {
                let mut v: f64 = 0.5;
                if p.stranger_slots > 0 && p.stranger_policy == StrangerPolicy::WhenNeeded {
                    v += 0.1;
                }
                v += 0.03 * f64::from(p.partner_slots);
                if p.allocation == Allocation::Freeride {
                    v -= 0.25;
                }
                v.clamp(0.0, 1.0)
            })
            .collect();
        let agg = rob.clone();
        SweepData {
            protocols,
            results: PraResults::new(perf_raw, perf, rob, agg),
            scale_name: "synthetic".into(),
        }
    }

    #[test]
    fn predictor_columns_match_paper_terms() {
        let protocols: Vec<SwarmProtocol> = SwarmProtocol::all().collect();
        let cols = predictors(&protocols);
        let names: Vec<&str> = cols.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["log(k~)", "log(h~)", "B2", "B3", "C2", "I2", "I3", "I4", "I5", "I6", "R2", "R3"]
        );
        assert!(cols.iter().all(|c| c.values.len() == protocols.len()));
    }

    #[test]
    fn regression_recovers_planted_signs() {
        let t3 = table3(&synthetic());
        // Freeride hurts performance most (paper: −0.544, largest |est|).
        let r3 = t3.estimate("performance", "R3").unwrap();
        assert!(r3 < -0.3, "R3 estimate {r3}");
        // Defect stranger policy hurts performance (paper: −0.206).
        assert!(t3.estimate("performance", "B3").unwrap() < -0.05);
        // When-needed helps robustness (paper: +0.026).
        assert!(t3.estimate("robustness", "B2").unwrap() > 0.05);
        // More partners helps robustness (paper: +0.035 on log(k~)).
        assert!(t3.estimate("robustness", "log(k~)").unwrap() > 0.0);
    }

    #[test]
    fn render_contains_all_rows() {
        let t3 = table3(&synthetic());
        let s = t3.render();
        for term in [
            "(intercept)",
            "log(k~)",
            "log(h~)",
            "B2",
            "B3",
            "C2",
            "I5",
            "R3",
        ] {
            assert!(s.contains(term), "missing {term} in\n{s}");
        }
        assert!(s.contains("adj.R2"));
    }

    #[test]
    fn estimate_lookup() {
        let t3 = table3(&synthetic());
        assert!(t3.estimate("performance", "R3").is_some());
        assert!(t3.estimate("nonsense", "R3").is_none());
        assert!(t3.estimate("performance", "Z9").is_none());
    }
}
