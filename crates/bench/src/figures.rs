//! Figures 2–8 and the §4.4 follow-up experiments, as views of the sweep.

use crate::prafig::rank_desc;
use crate::scale::Scale;
use crate::sweep::SweepData;
use dsa_core::pra::performance_phase;
use dsa_stats::ascii;
use dsa_stats::ccdf::Ccdf;
use dsa_stats::correlation::pearson;
use dsa_stats::histogram::{Histogram, Histogram2d};
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::protocol::{Allocation, Ranking, StrangerPolicy, SwarmProtocol};
use dsa_workloads::churn::ChurnModel;
use std::fmt::Write as _;

/// Mean partner count `k` over protocol indices (the quantity Figures
/// 3–4 and the churn experiment all summarize).
fn mean_partner_k(protocols: &[SwarmProtocol], indices: impl IntoIterator<Item = usize>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for i in indices {
        sum += f64::from(protocols[i].partner_slots);
        n += 1;
    }
    sum / n.max(1) as f64
}

/// Figure 2: scatter of all protocols, Robustness (x) vs Performance (y),
/// with marginal histograms.
#[must_use]
pub fn fig2(data: &SweepData) -> String {
    let points: Vec<(f64, f64)> = data
        .results
        .robustness
        .iter()
        .zip(&data.results.performance)
        .map(|(&r, &p)| (r, p))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: Robustness (x) vs Performance (y), {} protocols",
        points.len()
    );
    out.push_str(&ascii::scatter_unit(&points, 64, 24));

    let mut perf_hist = Histogram::new(0.0, 1.0, 10);
    perf_hist.extend(&data.results.performance);
    let mut rob_hist = Histogram::new(0.0, 1.0, 10);
    rob_hist.extend(&data.results.robustness);
    let _ = writeln!(out, "\nPerformance histogram (counts per 0.1 bin):");
    let _ = writeln!(out, "{:?}", perf_hist.counts());
    let _ = writeln!(out, "Robustness histogram (counts per 0.1 bin):");
    let _ = writeln!(out, "{:?}", rob_hist.counts());

    // The paper's headline observations, quantified.
    let freeriders_low = data
        .protocols
        .iter()
        .zip(&data.results.performance)
        .filter(|(p, _)| p.is_freerider())
        .map(|(_, &perf)| perf)
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "\nMax performance among freeriders (R3): {freeriders_low:.2} (paper: 0.31)"
    );
    let best = data.results.ranked_by(|p| p.performance)[0];
    let _ = writeln!(
        out,
        "Top performer: {} (paper: Defect strangers + Sort Slowest + 1 partner)",
        data.protocols[best]
    );
    out
}

/// Figure 3 (`measure = performance`) and Figure 4 (`measure =
/// robustness`): per-interval frequency of partner counts.
#[must_use]
pub fn fig3_fig4(data: &SweepData, robustness: bool) -> String {
    let measure = if robustness {
        &data.results.robustness
    } else {
        &data.results.performance
    };
    let mut h = Histogram2d::new(10, 0.0, 1.0, 10);
    for (proto, &m) in data.protocols.iter().zip(measure) {
        h.add(usize::from(proto.partner_slots), m);
    }
    let labels: Vec<String> = (0..10).map(|k| k.to_string()).collect();
    let name = if robustness {
        "4: Robustness"
    } else {
        "3: Performance"
    };
    let mut out = format!("Figure {name} by number of partners (columns: k = 0..9)\n");
    out.push_str(&ascii::frequency_map(&h.row_frequencies(), &labels));

    // Quantify the paper's claims about the extremes.
    let ranked = data.results.ranked_by(|p| {
        if robustness {
            p.robustness
        } else {
            p.performance
        }
    });
    let top: Vec<u8> = ranked
        .iter()
        .take(15)
        .map(|&i| data.protocols[i].partner_slots)
        .collect();
    let mean_top = mean_partner_k(&data.protocols, ranked.iter().take(15).copied());
    let bottom_mean = mean_partner_k(&data.protocols, ranked.iter().rev().take(15).copied());
    let _ = writeln!(
        out,
        "mean k of top-15: {mean_top:.1}   mean k of bottom-15: {bottom_mean:.1}"
    );
    let _ = writeln!(out, "k values of top-15: {top:?}");
    out
}

/// Figure 5: complementary CDF of robustness per stranger policy.
#[must_use]
pub fn fig5(data: &SweepData) -> String {
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut summary = String::new();
    for (policy, label) in [
        (StrangerPolicy::Periodic, "Periodic"),
        (StrangerPolicy::WhenNeeded, "When needed"),
        (StrangerPolicy::Defect, "Defect"),
    ] {
        let rob: Vec<f64> = data
            .protocols
            .iter()
            .zip(&data.results.robustness)
            .filter(|(p, _)| p.stranger_slots > 0 && p.stranger_policy == policy)
            .map(|(_, &r)| r)
            .collect();
        let ccdf = Ccdf::of(&rob);
        let _ = writeln!(
            summary,
            "{label:>12}: n={}, P(R>0.9)={:.3}, max={:.3}",
            rob.len(),
            ccdf.fraction_above(0.9),
            rob.iter().cloned().fold(0.0f64, f64::max)
        );
        series.push((label.to_string(), ccdf.points()));
    }
    let mut out = String::from("Figure 5: CCDF of Robustness by stranger policy\n");
    out.push_str(&ascii::ccdf_curves(&series, 64, 16));
    out.push_str(&summary);
    out
}

/// Figures 6 and 7: robustness distribution per allocation policy /
/// ranking function (circle size in the paper = performance; here we
/// report quartiles and the performance of the most robust protocol).
#[must_use]
pub fn fig6_fig7(data: &SweepData, by_ranking: bool) -> String {
    let mut out = if by_ranking {
        String::from("Figure 7: Robustness by ranking function\n")
    } else {
        String::from("Figure 6: Robustness by resource allocation\n")
    };
    let groups: Vec<(String, Vec<usize>)> = if by_ranking {
        Ranking::ALL
            .iter()
            .map(|r| {
                (
                    format!("{r:?}"),
                    data.protocols
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.partner_slots > 0 && p.ranking == *r)
                        .map(|(i, _)| i)
                        .collect(),
                )
            })
            .collect()
    } else {
        Allocation::ALL
            .iter()
            .map(|a| {
                (
                    format!("{a:?}"),
                    data.protocols
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.allocation == *a)
                        .map(|(i, _)| i)
                        .collect(),
                )
            })
            .collect()
    };
    let _ = writeln!(
        out,
        "{:>12} {:>6} {:>7} {:>7} {:>7} {:>7} {:>16}",
        "group", "n", "q1", "median", "q3", "max", "perf@most-robust"
    );
    for (name, idx) in groups {
        let rob: Vec<f64> = idx.iter().map(|&i| data.results.robustness[i]).collect();
        let best = idx
            .iter()
            .copied()
            .max_by(|&a, &b| {
                data.results.robustness[a]
                    .partial_cmp(&data.results.robustness[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>12} {:>6} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>16.3}",
            name,
            rob.len(),
            dsa_stats::describe::quantile(&rob, 0.25),
            dsa_stats::describe::median(&rob),
            dsa_stats::describe::quantile(&rob, 0.75),
            dsa_stats::describe::max(&rob),
            data.results.performance[best],
        );
    }
    out
}

/// Figure 8: robustness vs aggressiveness scatter with Pearson's r
/// (paper: 0.96).
#[must_use]
pub fn fig8(data: &SweepData) -> String {
    let points: Vec<(f64, f64)> = data
        .results
        .robustness
        .iter()
        .zip(&data.results.aggressiveness)
        .map(|(&r, &a)| (r, a))
        .collect();
    let r = pearson(&data.results.robustness, &data.results.aggressiveness);
    let mut out = String::from("Figure 8: Robustness (x) vs Aggressiveness (y)\n");
    out.push_str(&ascii::scatter_unit(&points, 64, 24));
    let _ = writeln!(out, "Pearson r = {r:.3} (paper: 0.96)");
    out
}

/// §4.4.2: where the Birds family lands in the sweep.
#[must_use]
pub fn birds_placement(data: &SweepData) -> String {
    let birds_best = |measure: &dyn Fn(&dsa_core::pra::PraPoint) -> f64| -> (usize, f64, usize) {
        // The best Birds-family protocol under a measure, its value and
        // its rank within the whole space.
        let mut best_idx = 0;
        let mut best_val = f64::NEG_INFINITY;
        for (i, p) in data.protocols.iter().enumerate() {
            if p.is_birds_family() {
                let v = measure(&data.results.point(i));
                if v > best_val {
                    best_val = v;
                    best_idx = i;
                }
            }
        }
        let rank = data.results.rank_of(best_idx, measure);
        (best_idx, best_val, rank)
    };
    let (pi, pv, pr) = birds_best(&|p| p.performance);
    let (ri, rv, rr) = birds_best(&|p| p.robustness);
    let (ai, av, ar) = birds_best(&|p| p.aggressiveness);
    let mut out = String::from(
        "Birds family placement (paper: perf 0.83 rank 30; rob 0.76 rank 714; agg 0.74 rank 630)\n",
    );
    let _ = writeln!(
        out,
        "best perf : {} = {pv:.2}, rank {pr}/{}",
        data.protocols[pi],
        data.results.len()
    );
    let _ = writeln!(
        out,
        "best rob  : {} = {rv:.2}, rank {rr}/{}",
        data.protocols[ri],
        data.results.len()
    );
    let _ = writeln!(
        out,
        "best agg  : {} = {av:.2}, rank {ar}/{}",
        data.protocols[ai],
        data.results.len()
    );
    out
}

/// §4.4's churn check: re-run the performance phase under churn and
/// verify that low-partner-count protocols still top the ranking.
#[must_use]
pub fn churn_experiment(scale: &Scale) -> String {
    let protocols: Vec<SwarmProtocol> = SwarmProtocol::all().collect();
    let mut out = String::from("Churn experiment: top-15 mean partner count by churn rate\n");
    for rate in [0.0, 0.01, 0.1] {
        let mut sim_cfg = scale.sim.clone();
        sim_cfg.churn = if rate > 0.0 {
            ChurnModel::PerRound { rate }
        } else {
            ChurnModel::None
        };
        let sim = SwarmSim { config: sim_cfg };
        let perf = performance_phase(&sim, &protocols, &scale.pra);
        let idx = rank_desc(&perf);
        let mean_k = mean_partner_k(&protocols, idx.iter().take(15).copied());
        let _ = writeln!(
            out,
            "churn={rate:<5} top performer: {:<22} mean k of top-15: {mean_k:.2}",
            protocols[idx[0]].to_string()
        );
    }
    out.push_str("(paper: 'it was still the protocols that employed a low number of partners that performed the best')\n");
    out
}

/// §4.3.2's methodology validation: Pearson correlation between the
/// 50/50 and 90/10 robustness tournaments (paper: 0.97).
#[must_use]
pub fn corr_9010(data: &SweepData, scale: &Scale) -> String {
    let (r50, r90) = data.robustness_9010(scale);
    let r = pearson(&r50, &r90);
    format!("Robustness 50/50 vs 90/10: Pearson r = {r:.3} (paper: 0.97)\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::results::PraResults;

    /// A synthetic sweep small enough for unit tests: real protocol
    /// descriptors, fabricated measures with known structure.
    fn fake_sweep() -> SweepData {
        let protocols: Vec<SwarmProtocol> = SwarmProtocol::all().collect();
        let perf_raw: Vec<f64> = protocols
            .iter()
            .map(|p| {
                if p.is_freerider() {
                    0.2
                } else {
                    1.0 - 0.05 * f64::from(p.partner_slots)
                }
            })
            .collect();
        let perf = dsa_stats::describe::normalize_by_max(&perf_raw);
        let rob: Vec<f64> = protocols
            .iter()
            .map(|p| 0.1 + 0.08 * f64::from(p.partner_slots))
            .collect();
        let agg: Vec<f64> = rob.iter().map(|r| r * 0.95).collect();
        SweepData {
            protocols,
            results: PraResults::new(perf_raw, perf, rob, agg),
            scale_name: "fake".into(),
        }
    }

    #[test]
    fn fig2_mentions_headlines() {
        let s = fig2(&fake_sweep());
        assert!(s.contains("Figure 2"));
        assert!(s.contains("Max performance among freeriders"));
        assert!(s.contains("Top performer"));
    }

    #[test]
    fn fig3_shows_low_k_on_top() {
        let s = fig3_fig4(&fake_sweep(), false);
        assert!(s.contains("Figure 3"));
        // In the fabricated data low k = high performance.
        assert!(s.contains("mean k of top-15: 1.0") || s.contains("mean k of top-15: 0."));
    }

    #[test]
    fn fig4_shows_high_k_on_top() {
        let s = fig3_fig4(&fake_sweep(), true);
        assert!(s.contains("Figure 4"));
        assert!(s.contains("mean k of top-15: 9.0"));
    }

    #[test]
    fn fig5_reports_three_policies() {
        let s = fig5(&fake_sweep());
        assert!(s.contains("Periodic"));
        assert!(s.contains("When needed"));
        assert!(s.contains("Defect"));
    }

    #[test]
    fn fig6_fig7_group_counts() {
        let by_alloc = fig6_fig7(&fake_sweep(), false);
        // 3270 / 3 allocations = 1090 per group.
        assert!(by_alloc.contains("1090"));
        let by_rank = fig6_fig7(&fake_sweep(), true);
        // 108 selection policies with k>0 per ranking × 10 × 3 / 6 = 540.
        assert!(by_rank.contains("540"));
    }

    #[test]
    fn fig8_reports_pearson() {
        let s = fig8(&fake_sweep());
        // agg = 0.95 × rob ⇒ r = 1.
        assert!(s.contains("Pearson r = 1.000"));
    }

    #[test]
    fn birds_placement_reports_ranks() {
        let s = birds_placement(&fake_sweep());
        assert!(s.contains("best perf"));
        assert!(s.contains("rank"));
    }
}
