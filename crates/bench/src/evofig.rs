//! The `evolution` experiment: population dynamics per domain.
//!
//! For every registered domain, measures (or loads from
//! `results/evo-<domain>-<scale>.csv`) the empirical payoff matrix over
//! the domain's candidate set — presets plus canonical attackers, plus
//! any `--mutants` additions — then runs the evolutionary analysis on
//! top: ESS classification, basin-of-attraction shares, finite-population
//! fixation probabilities, the replicator trajectory from the uniform
//! mixture, and the evolutionary price of anarchy (rest-point welfare
//! over the welfare-optimal protocol's). One summary CSV lands at
//! `results/evolution-<scale>.csv`.

use crate::scale::Scale;
use dsa_evolution::analysis::{analyze, default_candidates, welfare};
use dsa_evolution::payoff::EvoConfig;
use dsa_evolution::sweep::EvoSweep;
use dsa_gametheory::evolution::replicator_trajectory;
use dsa_stats::ascii;
use std::fmt::Write as _;
use std::path::Path;

/// Builds the population-dynamics configuration for a scale.
#[must_use]
pub fn evo_config(scale: &Scale) -> EvoConfig {
    EvoConfig {
        encounter_runs: scale.pra.encounter_runs,
        threads: scale.pra.threads,
        seed: scale.pra.seed,
        ..EvoConfig::default()
    }
}

/// Resolves a domain's candidate set: its defaults plus every `--mutants`
/// token the domain can parse (tokens foreign to this domain are noted
/// and skipped, so one mutant list can serve all domains).
fn candidate_set(
    domain: &dyn dsa_core::domain::DynDomain,
    mutants: &[String],
    notes: &mut String,
) -> Vec<usize> {
    let mut candidates = default_candidates(domain);
    for token in mutants {
        match domain.parse(token) {
            Ok(index) => {
                if !candidates.contains(&index) {
                    candidates.push(index);
                }
            }
            Err(_) => {
                let _ = writeln!(
                    notes,
                    "   (mutant '{token}' is not a {} protocol — skipped)",
                    domain.name()
                );
            }
        }
    }
    candidates
}

/// Runs the full cross-domain evolution experiment.
///
/// # Errors
///
/// Returns an error when a sweep cache is corrupt or a CSV cannot be
/// written.
pub fn evolution(scale: &Scale, out_dir: &Path, mutants: &[String]) -> Result<String, String> {
    let domains = crate::register_domains();
    let cfg = evo_config(scale);
    let mut out = format!(
        "Population dynamics over mixed-protocol populations (scale: {}, mutant share {:.0}%)\n",
        scale.name,
        cfg.mutant_share * 100.0
    );
    let mut csv =
        String::from("domain,index,name,ess,basin_share,fixation,self_welfare,ess_share,poa\n");
    for domain in &domains {
        let mut notes = String::new();
        let candidates = candidate_set(&**domain, mutants, &mut notes);
        let sweep = EvoSweep::load_or_compute(
            &**domain,
            &candidates,
            scale.effort(),
            &cfg,
            scale.name,
            out_dir,
        )?;
        let matrix = &sweep.matrix;
        let analysis = analyze(matrix, &cfg);
        let _ = writeln!(
            out,
            "\n-- {} ({} candidates of {} protocols, population {}) --",
            domain.name(),
            matrix.len(),
            domain.size(),
            matrix.population
        );
        out.push_str(&notes);
        let _ = writeln!(
            out,
            "   matrix {}: {}",
            if sweep.from_cache {
                "loaded from cache"
            } else {
                "computed and cached"
            },
            sweep.path(out_dir).display()
        );

        // The payoff cross-table, shaded: who exploits whom.
        out.push_str("   empirical payoff matrix (row's utility against column):\n");
        out.push_str(&ascii::matrix_heat(&matrix.payoff, &matrix.names));

        // Per-candidate table (rendering shared with `dsa .. evolve ess`).
        out.push_str(&analysis.candidate_table(matrix));
        for i in 0..matrix.len() {
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{}",
                domain.name(),
                matrix.candidates[i],
                dsa_core::results::quote_csv(&matrix.names[i]),
                u8::from(analysis.ess[i]),
                analysis.basin_share[i],
                analysis.fixation[i],
                matrix.payoff[i][i],
                analysis.ess_share(),
                analysis.poa
            );
        }
        if analysis.mixed_share > 0.0 {
            let _ = writeln!(
                out,
                "   ({:.0}% of sampled mixtures rest at no single protocol)",
                analysis.mixed_share * 100.0
            );
        }

        // Replicator trajectory from the uniform mixture: share curves
        // over (normalized) time.
        let k = matrix.len();
        let uniform = vec![1.0 / k as f64; k];
        let steps = 60;
        let trajectory = replicator_trajectory(&matrix.payoff, &uniform, steps);
        let series: Vec<(String, Vec<(f64, f64)>)> = (0..k)
            .map(|i| {
                (
                    matrix.names[i].clone(),
                    trajectory
                        .iter()
                        .enumerate()
                        .map(|(t, mix)| (t as f64 / steps as f64, mix[i]))
                        .collect(),
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "   replicator shares from the uniform mixture (x: 0..{steps} steps):"
        );
        out.push_str(&ascii::ccdf_curves(&series, 60, 12));
        let final_mix = trajectory.last().expect("non-empty trajectory");
        let _ = writeln!(
            out,
            "   uniform-start welfare after {steps} steps: {:.3}",
            welfare(&matrix.payoff, final_mix)
        );
        let _ = writeln!(out, "   {}", analysis.summary_line(matrix));
    }

    let path = out_dir.join(format!("evolution-{}.csv", scale.name));
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    std::fs::write(&path, csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    let _ = writeln!(
        out,
        "\nwrote {} ({} domains)",
        path.display(),
        domains.len()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_tracks_scale() {
        let scale = Scale::smoke();
        let cfg = evo_config(&scale);
        assert_eq!(cfg.encounter_runs, scale.pra.encounter_runs);
        assert_eq!(cfg.seed, scale.pra.seed);
        assert_eq!(cfg.mutant_share, EvoConfig::default().mutant_share);
    }

    #[test]
    fn candidate_set_extends_defaults_and_skips_foreign_mutants() {
        let domain = dsa_gossip::adapter::register();
        let mut notes = String::new();
        let base = candidate_set(&*domain, &[], &mut notes);
        assert_eq!(base, default_candidates(&*domain));
        assert!(notes.is_empty());
        // "7" parses everywhere; "bartercast" is a rep preset only.
        let extended = candidate_set(
            &*domain,
            &["7".to_string(), "bartercast".to_string()],
            &mut notes,
        );
        assert!(extended.contains(&7));
        assert_eq!(extended.len(), base.len() + 1);
        assert!(notes.contains("bartercast"));
    }

    /// The full experiment at smoke scale would sweep the swarm space;
    /// exercise the per-domain pipeline against gossip alone instead.
    #[test]
    fn gossip_evolution_runs_and_caches() {
        let dir = std::env::temp_dir().join(format!("dsa-evofig-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = Scale::smoke();
        let domain = dsa_gossip::adapter::register();
        let cfg = EvoConfig {
            encounter_runs: 1,
            basin_samples: 8,
            moran_trials: 20,
            ..evo_config(&scale)
        };
        let candidates = default_candidates(&*domain);
        let sweep = EvoSweep::load_or_compute(
            &*domain,
            &candidates,
            scale.effort(),
            &cfg,
            scale.name,
            &dir,
        )
        .expect("sweep");
        assert!(!sweep.from_cache);
        assert!(dir.join("evo-gossip-smoke.csv").exists());
        let analysis = analyze(&sweep.matrix, &cfg);
        assert_eq!(analysis.ess.len(), candidates.len());
        // Shares are probabilities and the PoA is a finite ratio.
        assert!(analysis.basin_share.iter().all(|s| (0.0..=1.0).contains(s)));
        assert!(analysis.poa.is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
