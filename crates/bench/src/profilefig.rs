//! The `profile` experiment: where does the wall-clock go?
//!
//! For every registered domain (plus the piece-level BitTorrent
//! simulator) this module runs one fresh PRA quantification with tracing
//! on, reads the span aggregates back out of [`dsa_obs`], and renders an
//! ASCII time-attribution figure: one bar per span, sized by *self* time
//! (time inside the span but outside its children), with a coverage line
//! stating how much of the measured wall-clock the named spans explain.
//! The numbers land in `results/profile-<scale>.csv`, the raw merged
//! registries in `results/obs-profile-<scale>.csv`, and every run
//! appends one provenance record to `results/journal.jsonl` under the
//! `experiments profile` command cohort.
//!
//! The cache is probed (via [`DomainSweep::load`]) before each fresh
//! quantification, so the `cache.hit`/`cache.miss.*` counters in the
//! exported snapshot show cold-vs-warm state; a missing cache is filled
//! so the next run flips miss → hit. Because attribution must be
//! per-domain, the experiment owns the global obs registries while it
//! runs: they are reset before each domain and left holding the last
//! domain's data afterwards.

use crate::scale::Scale;
use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_core::cache::DomainSweep;
use dsa_obs::Snapshot;
use dsa_stats::ascii;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// One profiled section: a domain sweep or the btsim run.
struct Section {
    /// Section label (`swarm`, `gossip`, `rep`, `btsim`).
    name: String,
    /// Wall-clock of the measured computation, in nanoseconds.
    wall_ns: u64,
    /// The obs registries as left by this section alone.
    snap: Snapshot,
}

impl Section {
    /// Nanoseconds attributed to named spans (sum of self times — child
    /// time is counted exactly once, in the child).
    fn attributed_ns(&self) -> u64 {
        self.snap.spans.values().map(|s| s.self_ns).sum()
    }

    /// Share of the wall-clock explained by named spans.
    fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        self.attributed_ns() as f64 / self.wall_ns as f64
    }
}

/// Runs `work` with the obs registries reset and tracing forced on,
/// returning the wall-clock and the registries it filled.
fn profiled<T>(work: impl FnOnce() -> T) -> (T, u64, Snapshot) {
    dsa_obs::reset();
    dsa_obs::enable_trace();
    let t0 = Instant::now();
    let out = work();
    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    dsa_obs::flush();
    (out, wall_ns, dsa_obs::snapshot())
}

/// Merges per-section snapshots into one exportable registry state:
/// counters and histogram-like aggregates add, gauges keep the last
/// written value (their in-registry semantics).
fn merge_snapshots(sections: &[Section]) -> Snapshot {
    let mut merged = Snapshot::default();
    for s in sections {
        for (name, &c) in &s.snap.counters {
            *merged.counters.entry(name.clone()).or_insert(0) += c;
        }
        for (name, &g) in &s.snap.gauges {
            merged.gauges.insert(name.clone(), g);
        }
        for (name, h) in &s.snap.hists {
            merged.hists.entry(name.clone()).or_default().merge(h);
        }
        for (name, st) in &s.snap.spans {
            merged.spans.entry(name.clone()).or_default().merge(st);
        }
    }
    merged
}

/// Renders one section's time-attribution block: bars of per-span self
/// time (milliseconds), the coverage line, and per-span invocation
/// quantiles (p50/p95/p99 over the span's duration histogram).
fn render_section(s: &Section) -> String {
    let mut entries: Vec<(String, f64, Option<f64>)> = s
        .snap
        .spans
        .iter()
        .map(|(name, st)| {
            (
                format!("{name} (×{})", st.dur.count),
                st.self_ns as f64 / 1e6,
                None,
            )
        })
        .collect();
    entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = format!(
        "{}: {} wall-clock, {:.1}% attributed to {} spans (self-time ms)\n",
        s.name,
        dsa_obs::fmt_ns(s.wall_ns),
        100.0 * s.coverage(),
        s.snap.spans.len()
    );
    out.push_str(&ascii::bars(&entries, 44));
    let _ = writeln!(
        out,
        "  {:<30} {:>8} {:>9} {:>9} {:>9}",
        "span (per invocation)", "count", "p50", "p95", "p99"
    );
    let mut by_total: Vec<_> = s.snap.spans.iter().collect();
    by_total.sort_by_key(|(_, st)| std::cmp::Reverse(st.dur.sum));
    for (name, st) in by_total {
        let (p50, p95, p99) = st.dur.percentiles();
        let _ = writeln!(
            out,
            "  {:<30} {:>8} {:>9} {:>9} {:>9}",
            name,
            st.dur.count,
            dsa_obs::fmt_ns(p50),
            dsa_obs::fmt_ns(p95),
            dsa_obs::fmt_ns(p99)
        );
    }
    out
}

/// The `profile` experiment: per-engine phase attribution at a scale.
///
/// `ts_ms` is the run's Unix timestamp in milliseconds, sampled once by
/// the caller (library code never reads the clock for metadata) — it
/// stamps the obs CSV export and the appended journal record.
///
/// # Errors
///
/// Returns an error when a sweep cache is corrupt or a result file
/// cannot be written.
pub fn profile(scale: &Scale, out_dir: &Path, ts_ms: u64) -> Result<String, String> {
    let was_trace = dsa_obs::trace_enabled();
    let was_metrics = dsa_obs::metrics_enabled();
    let domains = crate::register_domains();
    let mut sections = Vec::new();
    // Cache-touch provenance for the journal record: the per-section
    // `dsa_obs::reset()` in `profiled` clears the global cache-event log,
    // so probe- and store-phase events are captured here as they happen.
    let mut cache_log: Vec<(String, String)> = Vec::new();

    for domain in &domains {
        // Probe the cache first: hit/miss counters record cold-vs-warm
        // state, and a cold cache gets filled below so reruns are warm.
        let key = dsa_core::cache::SweepKey::of(&**domain, scale.name, scale.effort(), &scale.pra);
        dsa_obs::reset();
        dsa_obs::enable_metrics();
        let cached = DomainSweep::load(&key, out_dir)?;
        let probe_counters = dsa_obs::snapshot().counters;
        cache_log.extend(dsa_obs::journal::cache_events());
        let (results, wall_ns, mut snap) =
            profiled(|| domain.quantify_all(scale.effort(), &scale.pra));
        if cached.is_none() {
            let sweep = DomainSweep {
                key,
                names: domain.codes(),
                results,
                from_cache: false,
            };
            sweep.store(out_dir)?;
        }
        // The store above landed in the live registries after the section
        // snapshot; re-read the counters so the section holds the
        // quantification's events plus the store, then fold the probe in.
        snap.counters = dsa_obs::snapshot().counters;
        cache_log.extend(dsa_obs::journal::cache_events());
        for (name, c) in probe_counters {
            *snap.counters.entry(name).or_insert(0) += c;
        }
        sections.push(Section {
            name: domain.name().to_string(),
            wall_ns,
            snap,
        });
    }

    // The piece-level BitTorrent simulator is not a registered domain but
    // has the same phase spans; profile one homogeneous swarm per run.
    let bt_cfg = BtConfig::default();
    let runs = scale.bt_runs.max(1);
    let (_, wall_ns, snap) = profiled(|| {
        for r in 0..runs {
            let kinds = vec![ClientKind::BitTorrent; bt_cfg.leechers];
            let _ = dsa_btsim::swarm::simulate(&kinds, &bt_cfg, scale.pra.seed ^ r as u64);
        }
    });
    sections.push(Section {
        name: "btsim".to_string(),
        wall_ns,
        snap,
    });

    // Restore whatever observability state the caller had.
    dsa_obs::disable();
    if was_metrics {
        dsa_obs::enable_metrics();
    }
    if was_trace {
        dsa_obs::enable_trace();
    }

    let mut out = format!("Engine time attribution (scale: {})\n\n", scale.name);
    for s in &sections {
        out.push_str(&render_section(s));
        out.push('\n');
    }

    // CSV: one row per (section, span) plus a wall row per section.
    let mut csv = String::from("section,span,count,total_ns,self_ns,share_of_wall\n");
    for s in &sections {
        let _ = writeln!(csv, "{},(wall),1,{},0,1", s.name, s.wall_ns);
        for (name, st) in &s.snap.spans {
            let share = if s.wall_ns == 0 {
                0.0
            } else {
                st.self_ns as f64 / s.wall_ns as f64
            };
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{:.6}",
                s.name, name, st.dur.count, st.dur.sum, st.self_ns, share
            );
        }
    }
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let csv_path = out_dir.join(format!("profile-{}.csv", scale.name));
    std::fs::write(&csv_path, csv).map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
    let mut merged = merge_snapshots(&sections);
    // Memory telemetry: a final RSS reading plus the run's allocation
    // totals (no-op without --alloc) go into the merged snapshot, so
    // the CSV stamp and the journal's mem block carry them alongside
    // the arena gauges the engines recorded during the sections.
    if let Some(s) = dsa_obs::mem::read_rss() {
        merged
            .gauges
            .insert("mem.rss_bytes".to_string(), s.rss_bytes as f64);
        merged
            .gauges
            .insert("mem.rss_peak_bytes".to_string(), s.rss_peak_bytes as f64);
    }
    dsa_obs::alloc::publish_into(&mut merged);
    let threads = dsa_core::parallel::effective_threads(scale.pra.threads, usize::MAX);
    let export = dsa_obs::ExportMeta {
        run: format!("profile-{}", scale.name),
        bin: "experiments".to_string(),
        scale: Some(scale.name.to_string()),
        threads,
        ts_ms,
        mem: dsa_obs::journal::MemBlock::from_registries(&merged),
    };
    let obs_path = dsa_obs::write_csv(out_dir, &export, &merged)?;
    let _ = writeln!(
        out,
        "wrote {} and {}",
        csv_path.display(),
        obs_path.display()
    );

    // Journal the run: one record per profile invocation, under its own
    // command cohort ("experiments profile") so diffing and regression
    // windows compare profile runs only against other profile runs.
    let wall_ms = sections.iter().map(|s| s.wall_ns).sum::<u64>() / 1_000_000;
    let meta = dsa_obs::RunMeta {
        run_id: format!("profile-{}-{ts_ms}-{}", scale.name, std::process::id()),
        binary: "experiments".to_string(),
        command: "experiments profile".to_string(),
        timestamp_ms: ts_ms,
        scale: Some(scale.name.to_string()),
        domain: None,
        seed: Some(scale.pra.seed),
        threads,
    };
    let mut record = dsa_obs::JournalRecord::from_snapshot(meta, wall_ms, &merged);
    record.cache = cache_log;
    let journal_path =
        dsa_obs::journal::append(out_dir, &record, dsa_obs::journal::DEFAULT_MAX_BYTES)?;
    let _ = writeln!(
        out,
        "journaled {} to {}",
        record.meta.run_id,
        journal_path.display()
    );

    let worst = sections
        .iter()
        .min_by(|a, b| {
            a.coverage()
                .partial_cmp(&b.coverage())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one section");
    let _ = writeln!(
        out,
        "minimum span coverage: {:.1}% ({})",
        100.0 * worst.coverage(),
        worst.name
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global obs registries (shared
    /// with the integration suites via separate processes; within this
    /// binary a lock suffices).
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn profile_attributes_most_wall_clock_at_smoke() {
        let _guard = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("dsa-profile-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut scale = Scale::smoke();
        // Shrink further: the assertion is about coverage, not scale.
        scale.sim.rounds = 10;
        scale.sim.peers = 12;
        scale.pra.sampling = dsa_core::tournament::OpponentSampling::Sampled(1);
        let report = profile(&scale, &dir, 1_754_600_000_000).expect("profile runs");
        assert!(report.contains("minimum span coverage"));
        assert!(dir.join("profile-smoke.csv").exists());
        assert!(dir.join("obs-profile-smoke.csv").exists());
        // The run journals itself and prints per-span quantile columns.
        assert!(dir.join(dsa_obs::journal::JOURNAL_FILE).exists());
        assert!(report.contains("journaled profile-smoke-"));
        assert!(report.contains("span (per invocation)"));
        assert!(report.contains("p95"));
        // The per-engine phase spans must appear in the rendered bars.
        for span in [
            "swarm.rounds",
            "gossip.rounds",
            "rep.rounds",
            "btsim.rounds",
        ] {
            assert!(report.contains(span), "missing {span} in:\n{report}");
        }
        // Coverage: the named spans must explain ≥90% of the wall-clock.
        let line = report
            .lines()
            .find(|l| l.starts_with("minimum span coverage"))
            .unwrap();
        let pct: f64 = line
            .split(&[' ', '%'][..])
            .find_map(|t| t.parse().ok())
            .unwrap();
        assert!(pct >= 90.0, "coverage {pct}% below 90%:\n{report}");
        let _ = std::fs::remove_dir_all(&dir);
        dsa_obs::reset();
        dsa_obs::disable();
    }

    #[test]
    fn rerun_flips_cache_counters_from_miss_to_hit() {
        let _guard = LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("dsa-profile-flip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut scale = Scale::smoke();
        scale.sim.rounds = 10;
        scale.sim.peers = 12;
        scale.pra.sampling = dsa_core::tournament::OpponentSampling::Sampled(1);
        profile(&scale, &dir, 1_754_600_000_000).expect("cold run");
        let (meta, cold) = dsa_obs::read_csv(&dir.join("obs-profile-smoke.csv")).unwrap();
        assert_eq!(meta.run, "profile-smoke");
        assert_eq!(meta.scale.as_deref(), Some("smoke"));
        assert_eq!(meta.ts_ms, 1_754_600_000_000);
        assert_eq!(cold.counters.get("cache.miss.absent"), Some(&3));
        assert_eq!(cold.counters.get("cache.store"), Some(&3));
        assert!(!cold.counters.contains_key("cache.hit"));
        profile(&scale, &dir, 1_754_600_000_001).expect("warm run");
        let (_, warm) = dsa_obs::read_csv(&dir.join("obs-profile-smoke.csv")).unwrap();
        assert_eq!(warm.counters.get("cache.hit"), Some(&3));
        assert!(!warm.counters.contains_key("cache.miss.absent"));
        assert!(!warm.counters.contains_key("cache.store"));
        // Two runs under the same cohort → two journal records, with
        // cache-touch provenance flipping store → hit between them.
        let (records, skipped) = dsa_obs::journal::read_all(&dir).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records.len(), 2);
        assert!(records
            .iter()
            .all(|r| r.meta.command == "experiments profile"));
        assert!(records[0].cache.iter().any(|(_, o)| o == "store"));
        assert!(records[1].cache.iter().all(|(_, o)| o == "hit"));
        let _ = std::fs::remove_dir_all(&dir);
        dsa_obs::reset();
        dsa_obs::disable();
    }
}
