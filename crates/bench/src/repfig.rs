//! The reputation-domain DSA demonstration (the third domain; §7's
//! "domains other than P2P" future work applied to trust systems).
//!
//! The generic sweep/report pipeline lives in [`crate::prafig`]; this
//! module keeps only what is genuinely reputation-specific — the
//! whitewashing-attack figure.

use crate::prafig;
use crate::scale::Scale;
use dsa_core::cache::DomainSweep;
use dsa_core::sim::EncounterSim;
use dsa_reputation::adapter::RepSim;
use dsa_reputation::engine::RepConfig;
use dsa_reputation::presets;
use dsa_reputation::protocol::RepProtocol;
use std::fmt::Write as _;
use std::path::Path;

/// Runs (or loads from `results/`) the PRA sweep over the 288-protocol
/// reputation space and reports the extremes plus where the canonical
/// presets and attackers land.
///
/// # Errors
///
/// Returns an error when the sweep cache is corrupt or unwritable.
pub fn reputation_dsa(scale: &Scale, out_dir: &Path) -> Result<String, String> {
    let domain = dsa_reputation::adapter::register();
    let sweep =
        DomainSweep::load_or_compute(&*domain, scale.effort(), &scale.pra, scale.name, out_dir)?;
    Ok(prafig::domain_dsa(&*domain, &sweep, out_dir))
}

/// The whitewashing-attack figure: each host preset faces a 10% minority
/// of free-riders and of whitewashers; the attacker's per-peer take
/// relative to the host's measures how well the mechanism resists
/// identity churn.
#[must_use]
pub fn whitewash_attack(seed: u64) -> String {
    let sim = RepSim {
        config: RepConfig::default(),
    };
    let mut out =
        String::from("Whitewashing attack: attacker/host utility ratio at a 90/10 split\n");
    let _ = writeln!(
        out,
        "{:<62} {:>10} {:>12} {:>9}",
        "host protocol", "freerider", "whitewasher", "amplif."
    );
    let hosts = [
        ("private-tft", presets::private_tft()),
        ("bartercast", presets::bartercast()),
        ("elitist", presets::elitist()),
        ("baseline", RepProtocol::baseline()),
    ];
    // One task per (host, attacker) cell; seeds derive from the cell's
    // tags, not from any loop order, so the parallel map is bit-identical
    // to the old serial sweep.
    let ratios = dsa_core::parallel::parallel_map_indexed(hosts.len() * 2, 0, |task| {
        let host = hosts[task / 2].1;
        let (attacker, tag) = if task % 2 == 0 {
            (presets::freerider(), 0x1000u64)
        } else {
            (presets::whitewasher(), 0x2000u64)
        };
        let runs = 5;
        let mut acc = 0.0;
        for r in 0..runs {
            let (h, a) = sim.run_encounter(
                &host,
                &attacker,
                0.9,
                seed.wrapping_add(tag).wrapping_add(r),
            );
            acc += if h > 0.0 { a / h } else { 0.0 };
        }
        acc / runs as f64
    });
    for (i, (name, host)) in hosts.iter().enumerate() {
        let (fr, ww) = (ratios[2 * i], ratios[2 * i + 1]);
        let amplification = if fr > 1e-12 { ww / fr } else { f64::INFINITY };
        let _ = writeln!(
            out,
            "{:<62} {fr:>10.3} {ww:>12.3} {amplification:>8.2}x",
            format!("{name} ({host})"),
        );
    }
    out.push_str("(amplif. > 1: shedding identity beats honest free-riding against that host)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reputation_dsa_runs_caches_and_reports() {
        let dir = std::env::temp_dir().join(format!("dsa-repfig-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = Scale::smoke();
        let s = reputation_dsa(&scale, &dir).expect("sweep");
        assert!(s.contains("top performance"));
        assert!(s.contains("whitewasher"));
        assert!(s.contains("Pearson"));
        assert!(s.contains("computed and cached"));
        // The second run must reuse the results/ cache.
        let s2 = reputation_dsa(&scale, &dir).expect("cached sweep");
        assert!(s2.contains("loaded from cache"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_space_hash_stamp_is_recomputed_not_trusted() {
        // The EigenTrust actualization grew the reputation space from 216
        // to 288 protocols, which changes the space-shape hash: a cache
        // stamped under the old shape (e.g. a committed pra-rep-*.csv from
        // before the change) must be treated as stale, never loaded.
        let dir = std::env::temp_dir().join(format!("dsa-repstale-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = Scale::smoke();
        let domain = dsa_reputation::adapter::register();
        let key = dsa_core::cache::SweepKey::of(&*domain, scale.name, scale.effort(), &scale.pra);
        // Fabricate a pre-EigenTrust cache: same path, old shape hash and
        // old protocol count under an otherwise identical stamp.
        let mut stale = key.clone();
        stale.space_hash ^= 0x0216;
        stale.len = 216;
        let body = "index,name,performance_raw,performance,robustness,aggressiveness\n";
        dsa_core::cache::write_stamped(&key.cache_path(&dir), &stale, body).unwrap();
        assert!(
            DomainSweep::load(&key, &dir).unwrap().is_none(),
            "a stamp under the old space shape must not validate the new key"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn whitewash_attack_renders_all_hosts() {
        let s = super::whitewash_attack(5);
        assert!(s.contains("private-tft"));
        assert!(s.contains("bartercast"));
        assert!(s.contains("amplif"));
    }
}
