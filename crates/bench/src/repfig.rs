//! The reputation-domain DSA demonstration (the third domain; §7's
//! "domains other than P2P" future work applied to trust systems).

use dsa_core::pra::{quantify, PraConfig};
use dsa_core::sim::EncounterSim;
use dsa_core::tournament::OpponentSampling;
use dsa_reputation::adapter::RepSim;
use dsa_reputation::engine::RepConfig;
use dsa_reputation::presets;
use dsa_reputation::protocol::RepProtocol;
use std::fmt::Write as _;

/// Runs the PRA quantification over the 216-protocol reputation space
/// and reports the extremes plus where the canonical attackers land.
#[must_use]
pub fn reputation_dsa(seed: u64) -> String {
    let sim = RepSim {
        config: RepConfig::fast(),
    };
    let protocols: Vec<RepProtocol> = RepProtocol::all().collect();
    let config = PraConfig {
        performance_runs: 3,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(20),
        threads: 0,
        seed,
        ..PraConfig::default()
    };
    let results = quantify(&sim, &protocols, &config);
    let mut out =
        String::from("DSA on the reputation design space (3 × 3 × 3 × 4 × 2 = 216 protocols)\n");
    let by_perf = results.ranked_by(|p| p.performance);
    let by_rob = results.ranked_by(|p| p.robustness);
    let _ = writeln!(out, "top performance:");
    for &i in by_perf.iter().take(3) {
        let _ = writeln!(
            out,
            "  {:<55} P={:.2} R={:.2} A={:.2}",
            protocols[i].to_string(),
            results.performance[i],
            results.robustness[i],
            results.aggressiveness[i]
        );
    }
    let _ = writeln!(out, "top robustness:");
    for &i in by_rob.iter().take(3) {
        let _ = writeln!(
            out,
            "  {:<55} P={:.2} R={:.2} A={:.2}",
            protocols[i].to_string(),
            results.performance[i],
            results.robustness[i],
            results.aggressiveness[i]
        );
    }
    for (name, p) in [
        ("freerider", presets::freerider()),
        ("whitewasher", presets::whitewasher()),
        ("bartercast", presets::bartercast()),
        ("private-tft", presets::private_tft()),
    ] {
        let i = p.index();
        let _ = writeln!(
            out,
            "{name:<12} ranks {:>3}/216 by performance, {:>3}/216 by robustness",
            results.rank_of(i, |pt| pt.performance),
            results.rank_of(i, |pt| pt.robustness),
        );
    }
    let r = dsa_stats::correlation::pearson(&results.robustness, &results.aggressiveness);
    let _ = writeln!(out, "robustness/aggressiveness Pearson r = {r:.3}");
    out
}

/// The whitewashing-attack figure: each host preset faces a 10% minority
/// of free-riders and of whitewashers; the attacker's per-peer take
/// relative to the host's measures how well the mechanism resists
/// identity churn.
#[must_use]
pub fn whitewash_attack(seed: u64) -> String {
    let sim = RepSim {
        config: RepConfig::default(),
    };
    let mut out =
        String::from("Whitewashing attack: attacker/host utility ratio at a 90/10 split\n");
    let _ = writeln!(
        out,
        "{:<62} {:>10} {:>12} {:>9}",
        "host protocol", "freerider", "whitewasher", "amplif."
    );
    for (name, host) in [
        ("private-tft", presets::private_tft()),
        ("bartercast", presets::bartercast()),
        ("elitist", presets::elitist()),
        ("baseline", RepProtocol::baseline()),
    ] {
        let ratio = |attacker: RepProtocol, tag: u64| {
            let runs = 5;
            let mut acc = 0.0;
            for r in 0..runs {
                let (h, a) = sim.run_encounter(
                    &host,
                    &attacker,
                    0.9,
                    seed.wrapping_add(tag).wrapping_add(r),
                );
                acc += if h > 0.0 { a / h } else { 0.0 };
            }
            acc / runs as f64
        };
        let fr = ratio(presets::freerider(), 0x1000);
        let ww = ratio(presets::whitewasher(), 0x2000);
        let amplification = if fr > 1e-12 { ww / fr } else { f64::INFINITY };
        let _ = writeln!(
            out,
            "{:<62} {fr:>10.3} {ww:>12.3} {amplification:>8.2}x",
            format!("{name} ({host})"),
        );
    }
    out.push_str("(amplif. > 1: shedding identity beats honest free-riding against that host)\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reputation_dsa_runs_and_reports() {
        let s = super::reputation_dsa(3);
        assert!(s.contains("top performance"));
        assert!(s.contains("whitewasher"));
        assert!(s.contains("Pearson"));
    }

    #[test]
    fn whitewash_attack_renders_all_hosts() {
        let s = super::whitewash_attack(5);
        assert!(s.contains("private-tft"));
        assert!(s.contains("bartercast"));
        assert!(s.contains("amplif"));
    }
}
