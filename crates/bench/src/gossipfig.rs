//! The gossip-domain DSA demonstration (Section 3.1's example space,
//! §7's "domains other than P2P" future work).
//!
//! All the sweep/report plumbing is the generic pipeline in
//! [`crate::prafig`]; this module just binds it to the gossip domain.

use crate::prafig;
use crate::scale::Scale;
use dsa_core::cache::DomainSweep;
use std::path::Path;

/// Runs (or loads from `results/`) the PRA sweep over the 108-protocol
/// gossip space and reports the extremes and preset ranks.
///
/// # Errors
///
/// Returns an error when the sweep cache is corrupt or unwritable.
pub fn gossip_dsa(scale: &Scale, out_dir: &Path) -> Result<String, String> {
    let domain = dsa_gossip::adapter::register();
    let sweep =
        DomainSweep::load_or_compute(&*domain, scale.effort(), &scale.pra, scale.name, out_dir)?;
    Ok(prafig::domain_dsa(&*domain, &sweep, out_dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_dsa_runs_caches_and_reports() {
        let dir = std::env::temp_dir().join(format!("dsa-gossipfig-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = Scale::smoke();
        let s = gossip_dsa(&scale, &dir).expect("sweep");
        assert!(s.contains("top performance"));
        assert!(s.contains("Pearson"));
        let s2 = gossip_dsa(&scale, &dir).expect("cached sweep");
        assert!(s2.contains("loaded from cache"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
