//! The gossip-domain DSA demonstration (Section 3.1's example space,
//! §7's "domains other than P2P" future work).

use dsa_core::pra::{quantify, PraConfig};
use dsa_core::tournament::OpponentSampling;
use dsa_gossip::engine::GossipSim;
use dsa_gossip::protocol::GossipProtocol;
use std::fmt::Write as _;

/// Runs the PRA quantification over the 108-protocol gossip space and
/// reports the extremes.
#[must_use]
pub fn gossip_dsa(seed: u64) -> String {
    let sim = GossipSim::default();
    let protocols: Vec<GossipProtocol> = GossipProtocol::all().collect();
    let config = PraConfig {
        performance_runs: 3,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(20),
        threads: 0,
        seed,
        ..PraConfig::default()
    };
    let results = quantify(&sim, &protocols, &config);
    let mut out = String::from("DSA on the gossip design space (4 × 3 × 3 × 3 = 108 protocols)\n");
    let by_perf = results.ranked_by(|p| p.performance);
    let by_rob = results.ranked_by(|p| p.robustness);
    let _ = writeln!(out, "top performance:");
    for &i in by_perf.iter().take(3) {
        let _ = writeln!(
            out,
            "  {:<55} P={:.2} R={:.2} A={:.2}",
            protocols[i].to_string(),
            results.performance[i],
            results.robustness[i],
            results.aggressiveness[i]
        );
    }
    let _ = writeln!(out, "top robustness:");
    for &i in by_rob.iter().take(3) {
        let _ = writeln!(
            out,
            "  {:<55} P={:.2} R={:.2} A={:.2}",
            protocols[i].to_string(),
            results.performance[i],
            results.robustness[i],
            results.aggressiveness[i]
        );
    }
    let r = dsa_stats::correlation::pearson(&results.robustness, &results.aggressiveness);
    let _ = writeln!(out, "robustness/aggressiveness Pearson r = {r:.3}");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn gossip_dsa_runs_and_reports() {
        let s = super::gossip_dsa(3);
        assert!(s.contains("top performance"));
        assert!(s.contains("Pearson"));
    }
}
