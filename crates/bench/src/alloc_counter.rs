//! A counting global allocator, compiled only under the `count-allocs`
//! feature.
//!
//! Wraps the system allocator and tallies every `alloc` / `alloc_zeroed`
//! / `realloc`, so tests can assert that a code region performs **zero**
//! heap allocations — the proof behind the engines' "allocation-free in
//! steady state" contract (see the `alloc_count` integration test).
//!
//! The tallies live in [`dsa_obs::alloc`] — the same counters the
//! runtime `--alloc` flag feeds — so footprint tests can compare a
//! scratch's computed `footprint()` against the live bytes the counting
//! allocator actually observed. Unlike the runtime allocator (which
//! tallies only once `--alloc` enables it), this one counts
//! *unconditionally*: a test must never measure zero because a flag was
//! left off. Deallocations adjust live-bytes bookkeeping only; the
//! allocation count tracks acquisition, so handing buffers across
//! regions is not double-charged.
//!
//! The count is per-thread ([`thread_allocations`]), so parallel test
//! threads do not bleed into each other's measurements.

use std::alloc::{GlobalAlloc, Layout, System};

/// Total allocations (alloc + alloc_zeroed + realloc calls) performed by
/// the current thread since it started.
#[must_use]
pub fn thread_allocations() -> u64 {
    dsa_obs::alloc::thread_count()
}

/// The counting allocator itself; installed as `#[global_allocator]`
/// below. The binaries install [`dsa_obs::alloc::CountingAlloc`]
/// instead (gated off under this feature so the process has exactly one
/// global allocator).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the dsa_obs tally path touches
// only atomics and const-initialized thread-local `Cell`s, so it
// performs no allocation and cannot re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        dsa_obs::alloc::tally(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        dsa_obs::alloc::tally_free(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        dsa_obs::alloc::tally(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc acquires the new size and releases the old one.
        dsa_obs::alloc::tally(new_size);
        dsa_obs::alloc::tally_free(layout.size());
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;
