//! A counting global allocator, compiled only under the `count-allocs`
//! feature.
//!
//! Wraps the system allocator and bumps a thread-local counter on every
//! `alloc` / `alloc_zeroed` / `realloc`, so tests can assert that a code
//! region performs **zero** heap allocations — the proof behind the
//! engines' "allocation-free in steady state" contract (see the
//! `alloc_count` integration test). Deallocations are not counted: the
//! contract is about acquiring memory in the hot path, and counting
//! frees would double-charge buffers handed across regions.
//!
//! The counter is per-thread, so parallel test threads do not bleed into
//! each other's measurements.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Total allocations (alloc + alloc_zeroed + realloc calls) performed by
/// the current thread since it started.
#[must_use]
pub fn thread_allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// The counting allocator itself; installed as `#[global_allocator]`
/// below.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a const-initialized
// thread-local `Cell`, so bumping it performs no allocation and cannot
// re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;
