//! The typed swarm-domain view of the generic sweep cache.
//!
//! Figures 2–8 and Table 3 are all views of one sweep over the
//! 3270-protocol swarm space, and they need *typed* protocol descriptors
//! ([`SwarmProtocol`]) to group by dimension. This module wraps the
//! generic content-addressed cache ([`dsa_core::cache`]) — shared with
//! the gossip and reputation sweeps — in that typed interface. The cache
//! key is `(domain, space hash, scale, seed)`; the swarm cache file is
//! `results/pra-swarm-<scale>.csv`.

use crate::scale::Scale;
use dsa_core::cache::{DomainSweep, SweepKey};
use dsa_core::pra::{quantify, tournament_rates};
use dsa_core::results::PraResults;
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::protocol::SwarmProtocol;
use std::path::{Path, PathBuf};

/// A finished sweep: the protocol list (index order) plus PRA results.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// Every protocol, in design-space index order.
    pub protocols: Vec<SwarmProtocol>,
    /// PRA measures per protocol.
    pub results: PraResults,
    /// The scale the sweep was run at.
    pub scale_name: String,
}

impl SweepData {
    /// Runs the full sweep at the given scale (no caching).
    #[must_use]
    pub fn compute(scale: &Scale) -> Self {
        let protocols: Vec<SwarmProtocol> = SwarmProtocol::all().collect();
        let sim = SwarmSim {
            config: scale.sim.clone(),
        };
        let results = quantify(&sim, &protocols, &scale.pra);
        Self {
            protocols,
            results,
            scale_name: scale.name.to_string(),
        }
    }

    /// The generic cache key of the swarm sweep at a scale. The
    /// simulator signature is taken from `scale.sim` — identical to the
    /// domain's effort mapping for the standard scales, so this path and
    /// the registry path share cache entries, but diverging under any
    /// parameter tweak so neither can poison the other.
    #[must_use]
    pub fn cache_key(scale: &Scale) -> SweepKey {
        let domain = dsa_swarm::adapter::register();
        SweepKey::with_signature(
            &*domain,
            scale.name,
            &format!("{:?}", scale.sim),
            &scale.pra,
        )
    }

    /// Loads the cached sweep for a scale, or computes and caches it.
    /// A cache stamped with a different space hash, scale or seed is
    /// recomputed, not trusted.
    ///
    /// # Errors
    ///
    /// Returns an error if a matching cache exists but cannot be parsed,
    /// or the cache directory cannot be written.
    pub fn load_or_compute(scale: &Scale, out_dir: &Path) -> Result<Self, String> {
        let sweep = DomainSweep::load_or_compute_with(Self::cache_key(scale), out_dir, || {
            let data = Self::compute(scale);
            let names = data.protocols.iter().map(ToString::to_string).collect();
            (names, data.results)
        })?;
        Ok(Self {
            protocols: SwarmProtocol::all().collect(),
            results: sweep.results,
            scale_name: scale.name.to_string(),
        })
    }

    /// The cache file path for a scale.
    #[must_use]
    pub fn cache_path(scale: &Scale, out_dir: &Path) -> PathBuf {
        Self::cache_key(scale).cache_path(out_dir)
    }

    /// Runs the 90/10 robustness variant (§4.3.2's validation) and
    /// returns (50/50 rates, 90/10 rates).
    #[must_use]
    pub fn robustness_9010(&self, scale: &Scale) -> (Vec<f64>, Vec<f64>) {
        let sim = SwarmSim {
            config: scale.sim.clone(),
        };
        let r9010 = tournament_rates(&sim, &self.protocols, 0.9, &scale.pra, 7);
        (self.results.robustness.clone(), r9010)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A micro-sweep over a protocol subset exercises the plumbing
    /// without paying for the full space.
    #[test]
    fn quantify_micro_subset() {
        let scale = Scale::smoke();
        let protocols = vec![
            dsa_swarm::presets::bittorrent(),
            dsa_swarm::presets::birds(),
            dsa_swarm::presets::freerider(),
        ];
        let sim = SwarmSim {
            config: scale.sim.clone(),
        };
        let results = quantify(&sim, &protocols, &scale.pra);
        assert_eq!(results.len(), 3);
        // The freerider must be the worst performer of the three.
        assert!(results.performance[2] < results.performance[0]);
        assert!(results.performance[2] < results.performance[1]);
    }

    /// The swarm simulator parameters per effort level are defined in
    /// two places — the bench `Scale` presets and `SwarmDomain::sim` —
    /// and both sweep paths write the same cache file. They must agree
    /// on the full key, or each path would forever invalidate the
    /// other's cache.
    #[test]
    fn typed_and_registry_cache_keys_agree() {
        let domain = dsa_swarm::adapter::register();
        for scale in [Scale::smoke(), Scale::lab(), Scale::paper()] {
            let typed = SweepData::cache_key(&scale);
            let registry = SweepKey::of(&*domain, scale.name, scale.effort(), &scale.pra);
            assert_eq!(typed, registry, "key mismatch at scale '{}'", scale.name);
        }
    }

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dsa-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Shrink the space cost: smoke scale with tiny parameters.
        let mut scale = Scale::smoke();
        scale.sim.rounds = 10;
        scale.sim.peers = 12;
        scale.pra.performance_runs = 1;
        scale.pra.encounter_runs = 1;
        scale.pra.sampling = dsa_core::tournament::OpponentSampling::Sampled(1);
        let a = SweepData::load_or_compute(&scale, &dir).expect("compute");
        assert!(SweepData::cache_path(&scale, &dir).exists());
        let b = SweepData::load_or_compute(&scale, &dir).expect("load");
        assert_eq!(a.results, b.results);
        // A different seed is a different sweep: the stamped cache must
        // not be trusted for it.
        let mut reseeded = scale.clone();
        reseeded.pra.seed ^= 1;
        assert_eq!(
            SweepData::cache_path(&scale, &dir),
            SweepData::cache_path(&reseeded, &dir),
            "same file, different key"
        );
        let c = SweepData::load_or_compute(&reseeded, &dir).expect("recompute");
        assert_ne!(a.results, c.results);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
