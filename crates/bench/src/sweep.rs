//! The PRA sweep over the 3270-protocol space, with CSV caching.
//!
//! Figures 2–8 and Table 3 are all views of one sweep, so the harness
//! computes it once per scale and caches it as
//! `results/pra-<scale>.csv`; downstream experiments load the cache.

use crate::scale::Scale;
use dsa_core::pra::{quantify, tournament_rates};
use dsa_core::results::PraResults;
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::protocol::SwarmProtocol;
use std::path::{Path, PathBuf};

/// A finished sweep: the protocol list (index order) plus PRA results.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// Every protocol, in design-space index order.
    pub protocols: Vec<SwarmProtocol>,
    /// PRA measures per protocol.
    pub results: PraResults,
    /// The scale the sweep was run at.
    pub scale_name: String,
}

impl SweepData {
    /// Runs the full sweep at the given scale (no caching).
    #[must_use]
    pub fn compute(scale: &Scale) -> Self {
        let protocols: Vec<SwarmProtocol> = SwarmProtocol::all().collect();
        let sim = SwarmSim {
            config: scale.sim.clone(),
        };
        let results = quantify(&sim, &protocols, &scale.pra);
        Self {
            protocols,
            results,
            scale_name: scale.name.to_string(),
        }
    }

    /// Loads the cached sweep for a scale, or computes and caches it.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache exists but cannot be parsed, or the
    /// cache directory cannot be written.
    pub fn load_or_compute(scale: &Scale, out_dir: &Path) -> Result<Self, String> {
        let path = Self::cache_path(scale, out_dir);
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let (results, _names) = PraResults::from_csv(&text)?;
            if results.len() == dsa_swarm::protocol::SPACE_SIZE {
                return Ok(Self {
                    protocols: SwarmProtocol::all().collect(),
                    results,
                    scale_name: scale.name.to_string(),
                });
            }
            // Stale/partial cache: recompute.
        }
        let data = Self::compute(scale);
        std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
        let names: Vec<String> = data.protocols.iter().map(|p| p.to_string()).collect();
        std::fs::write(&path, data.results.to_csv(Some(&names)))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(data)
    }

    /// The cache file path for a scale.
    #[must_use]
    pub fn cache_path(scale: &Scale, out_dir: &Path) -> PathBuf {
        out_dir.join(format!("pra-{}.csv", scale.name))
    }

    /// Runs the 90/10 robustness variant (§4.3.2's validation) and
    /// returns (50/50 rates, 90/10 rates).
    #[must_use]
    pub fn robustness_9010(&self, scale: &Scale) -> (Vec<f64>, Vec<f64>) {
        let sim = SwarmSim {
            config: scale.sim.clone(),
        };
        let r9010 = tournament_rates(&sim, &self.protocols, 0.9, &scale.pra, 7);
        (self.results.robustness.clone(), r9010)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A micro-sweep over a protocol subset exercises the plumbing
    /// without paying for the full space.
    #[test]
    fn quantify_micro_subset() {
        let scale = Scale::smoke();
        let protocols = vec![
            dsa_swarm::presets::bittorrent(),
            dsa_swarm::presets::birds(),
            dsa_swarm::presets::freerider(),
        ];
        let sim = SwarmSim {
            config: scale.sim.clone(),
        };
        let results = quantify(&sim, &protocols, &scale.pra);
        assert_eq!(results.len(), 3);
        // The freerider must be the worst performer of the three.
        assert!(results.performance[2] < results.performance[0]);
        assert!(results.performance[2] < results.performance[1]);
    }

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dsa-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Shrink the space cost: smoke scale with tiny parameters.
        let mut scale = Scale::smoke();
        scale.sim.rounds = 10;
        scale.sim.peers = 12;
        scale.pra.performance_runs = 1;
        scale.pra.encounter_runs = 1;
        scale.pra.sampling = dsa_core::tournament::OpponentSampling::Sampled(1);
        let a = SweepData::load_or_compute(&scale, &dir).expect("compute");
        assert!(SweepData::cache_path(&scale, &dir).exists());
        let b = SweepData::load_or_compute(&scale, &dir).expect("load");
        assert_eq!(a.results, b.results);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
