//! Section 2 artifacts: Figure 1, Table 1 and the Appendix equilibrium
//! analysis, rendered for the terminal.

use dsa_gametheory::analytics;
use dsa_gametheory::classes::ClassParams;
use dsa_gametheory::games;
use dsa_gametheory::nash;
use std::fmt::Write as _;

/// Figure 1: the BitTorrent Dilemma (a) and Birds (c) payoff matrices with
/// their dominant strategies.
#[must_use]
pub fn fig1(f: f64, s: f64) -> String {
    let bt = games::bittorrent_dilemma(f, s);
    let birds = games::birds(f, s);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1(a): {bt}");
    let _ = writeln!(
        out,
        "dominant strategies: fast → {:?}, slow → {:?}",
        bt.dominant_row().map(|(a, _)| a),
        bt.dominant_col().map(|(a, _)| a)
    );
    let _ = writeln!(out, "\nFigure 1(c): {birds}");
    let _ = writeln!(
        out,
        "dominant strategies: fast → {:?}, slow → {:?}",
        birds.dominant_row().map(|(a, _)| a),
        birds.dominant_col().map(|(a, _)| a)
    );
    out
}

/// Table 1 + Section 2.2: the class model and expected game wins.
#[must_use]
pub fn table1(params: &ClassParams) -> String {
    let bt = analytics::bittorrent(params);
    let birds = analytics::birds(params);
    let mut out = String::from("Table 1 parameters and §2.2 expected wins per period\n");
    let _ = writeln!(
        out,
        "N_A={} N_B={} N_C={} U_r={} N_r={}",
        params.n_above,
        params.n_below,
        params.n_class,
        params.unchoke_slots,
        params.nr()
    );
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10}",
        "expectation", "BitTorrent", "Birds"
    );
    let rows = [
        ("Er[A→c]", bt.recip_above, birds.recip_above),
        ("E [A→c]", bt.free_above, birds.free_above),
        ("Er[B→c]", bt.recip_below, birds.recip_below),
        ("E [B→c]", bt.free_below, birds.free_below),
        ("Er[C→c]", bt.recip_same, birds.recip_same),
        ("E [C→c]", bt.free_same, birds.free_same),
        ("total", bt.total(), birds.total()),
    ];
    for (name, b, r) in rows {
        let _ = writeln!(out, "{name:<22} {b:>10.4} {r:>10.4}");
    }
    out
}

/// The Appendix: deviation outcomes proving BT is not a NE and Birds is.
#[must_use]
pub fn nash_analysis(params: &ClassParams) -> String {
    let bt_swarm = nash::birds_deviant_in_bt_swarm(params);
    let birds_swarm = nash::bt_deviant_in_birds_swarm(params);
    let mut out = String::from("Appendix: unilateral deviation analysis\n");
    let _ = writeln!(
        out,
        "Birds deviant in BT swarm    : deviant {:.4} vs incumbent {:.4} → deviation {}",
        bt_swarm.deviant,
        bt_swarm.incumbent,
        if bt_swarm.deviation_pays() {
            "PAYS (BT is NOT a Nash equilibrium)"
        } else {
            "does not pay"
        }
    );
    let _ = writeln!(
        out,
        "BT deviant in Birds swarm    : deviant {:.4} vs incumbent {:.4} → deviation {}",
        birds_swarm.deviant,
        birds_swarm.incumbent,
        if birds_swarm.deviation_pays() {
            "pays"
        } else {
            "does NOT pay (Birds IS a Nash equilibrium)"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_dominance_flip() {
        let s = fig1(10.0, 4.0);
        assert!(s.contains("Figure 1(a)"));
        assert!(s.contains("slow → Some(Cooperate)"));
        assert!(s.contains("Figure 1(c)"));
        assert!(s.contains("slow → Some(Defect)"));
    }

    #[test]
    fn table1_renders_expectations() {
        let s = table1(&ClassParams::example_swarm());
        assert!(s.contains("Er[C→c]"));
        assert!(s.contains("N_A=17"));
    }

    #[test]
    fn nash_analysis_states_both_results() {
        let s = nash_analysis(&ClassParams::example_swarm());
        assert!(s.contains("NOT a Nash equilibrium"));
        assert!(s.contains("IS a Nash equilibrium"));
    }
}
