//! Generic PRA figure plumbing, shared by every registered domain.
//!
//! Before the domain registry, each domain crate re-implemented the same
//! report: configure a simulator, quantify, rank, print the top
//! protocols and the robustness/aggressiveness correlation. This module
//! writes that pipeline once against [`DynDomain`], adds the cached
//! sweep underneath ([`DomainSweep`]), and implements the cross-domain
//! PRA cube comparison the paper's "domain-agnostic" claim calls for.

use crate::scale::Scale;
use dsa_core::cache::DomainSweep;
use dsa_core::domain::DynDomain;
use dsa_core::results::PraResults;
use dsa_stats::correlation::pearson;
use dsa_stats::hull::convex_hull_volume;
use std::fmt::Write as _;
use std::path::Path;

/// Renders the space arithmetic, e.g. `"4 × 3 × 3 × 4 × 2 = 288"`.
#[must_use]
pub fn space_arithmetic(domain: &dyn DynDomain) -> String {
    let factors: Vec<String> = domain
        .space()
        .dimensions()
        .iter()
        .map(|d| d.len().to_string())
        .collect();
    format!("{} = {}", factors.join(" × "), domain.size())
}

/// Indices sorted descending by value (ties broken by index, so the
/// order is deterministic).
#[must_use]
pub fn rank_desc(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// The "top performance / top robustness" block every domain report
/// shares.
#[must_use]
pub fn top_block(names: &[String], results: &PraResults, take: usize) -> String {
    let mut out = String::new();
    for (label, measure) in [
        ("top performance:", &results.performance),
        ("top robustness:", &results.robustness),
    ] {
        let _ = writeln!(out, "{label}");
        for &i in rank_desc(measure).iter().take(take) {
            let _ = writeln!(
                out,
                "  {:<55} P={:.2} R={:.2} A={:.2}",
                names[i], results.performance[i], results.robustness[i], results.aggressiveness[i]
            );
        }
    }
    out
}

/// Where each preset (and thereby each canonical attacker) ranks in the
/// space, by performance and by robustness.
#[must_use]
pub fn preset_ranks(domain: &dyn DynDomain, results: &PraResults) -> String {
    let n = results.len();
    let mut out = String::new();
    for (name, index) in domain.presets() {
        let _ = writeln!(
            out,
            "{name:<12} ranks {:>4}/{n} by performance, {:>4}/{n} by robustness",
            results.rank_of(index, |p| p.performance),
            results.rank_of(index, |p| p.robustness),
        );
    }
    out
}

/// The robustness/aggressiveness correlation line (paper: 0.96 for the
/// swarm space).
#[must_use]
pub fn pearson_line(results: &PraResults) -> String {
    let r = pearson(&results.robustness, &results.aggressiveness);
    format!("robustness/aggressiveness Pearson r = {r:.3}\n")
}

/// The full single-domain DSA report over a cached sweep: space
/// arithmetic, top protocols, preset/attacker ranks, R/A correlation and
/// cache provenance.
#[must_use]
pub fn domain_dsa(domain: &dyn DynDomain, sweep: &DomainSweep, out_dir: &Path) -> String {
    let mut out = format!(
        "DSA on the {} design space ({} protocols)\n",
        domain.name(),
        space_arithmetic(domain)
    );
    out.push_str(&top_block(&sweep.names, &sweep.results, 3));
    out.push_str(&preset_ranks(domain, &sweep.results));
    out.push_str(&pearson_line(&sweep.results));
    let _ = writeln!(
        out,
        "(sweep {}: {})",
        if sweep.from_cache {
            "loaded from cache"
        } else {
            "computed and cached"
        },
        sweep.key.cache_path(out_dir).display()
    );
    out
}

/// Shape statistics of one domain's PRA point cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeStats {
    /// Number of protocols.
    pub n: usize,
    /// Pearson correlation of Performance and Robustness.
    pub corr_pr: f64,
    /// Pearson correlation of Robustness and Aggressiveness.
    pub corr_ra: f64,
    /// Convex hull volume of the (P, R, A) cloud in the unit cube.
    pub hull_volume: f64,
    /// Mean (P, R, A).
    pub mean: [f64; 3],
    /// Corner occupancy: protocol counts per octant of the cube, split
    /// at 0.5 per axis. Index bits: `P > 0.5` (4), `R > 0.5` (2),
    /// `A > 0.5` (1).
    pub octants: [usize; 8],
}

/// Octant labels in index order (`m` = measure ≤ 0.5, `p` = > 0.5;
/// letter order P, R, A).
pub const OCTANT_LABELS: [&str; 8] = ["mmm", "mmp", "mpm", "mpp", "pmm", "pmp", "ppm", "ppp"];

/// Computes the cube statistics of a sweep.
#[must_use]
pub fn cube_stats(results: &PraResults) -> CubeStats {
    let n = results.len();
    let points: Vec<[f64; 3]> = (0..n)
        .map(|i| {
            [
                results.performance[i],
                results.robustness[i],
                results.aggressiveness[i],
            ]
        })
        .collect();
    let mut octants = [0usize; 8];
    let mut mean = [0.0f64; 3];
    for p in &points {
        let idx =
            usize::from(p[0] > 0.5) << 2 | usize::from(p[1] > 0.5) << 1 | usize::from(p[2] > 0.5);
        octants[idx] += 1;
        for (m, c) in mean.iter_mut().zip(p) {
            *m += c;
        }
    }
    for m in &mut mean {
        *m /= n.max(1) as f64;
    }
    CubeStats {
        n,
        corr_pr: pearson(&results.performance, &results.robustness),
        corr_ra: pearson(&results.robustness, &results.aggressiveness),
        hull_volume: convex_hull_volume(&points),
        mean,
        octants,
    }
}

/// The cross-domain experiment: one cached sweep per registered domain,
/// PRA cube summary statistics side by side, and a CSV at
/// `<out>/cross-<scale>.csv` — the direct check of the paper's claim
/// that the quantification is domain-agnostic.
///
/// # Errors
///
/// Returns an error when a sweep cache is corrupt or the CSV cannot be
/// written.
pub fn cross_domain(scale: &Scale, out_dir: &Path) -> Result<String, String> {
    let domains = crate::register_domains();
    let mut out = format!("Cross-domain PRA cube comparison (scale: {})\n", scale.name);
    let mut csv = String::from("domain,n,corr_pr,corr_ra,hull_volume,mean_perf,mean_rob,mean_agg");
    for label in OCTANT_LABELS {
        let _ = write!(csv, ",oct_{label}");
    }
    csv.push('\n');
    let _ = writeln!(
        out,
        "{:<8} {:>5} {:>7} {:>7} {:>9}  {:>14}",
        "domain", "n", "P-R r", "R-A r", "hull vol", "mean P/R/A"
    );
    let mut occupancy = String::from("corner occupancy (share of protocols per octant, split at 0.5; letters = P,R,A high/low):\n");
    let _ = writeln!(
        occupancy,
        "{:<8} {}",
        "domain",
        OCTANT_LABELS.map(|l| format!("{l:>7}")).join(" ")
    );
    for domain in &domains {
        let sweep = DomainSweep::load_or_compute(
            &**domain,
            scale.effort(),
            &scale.pra,
            scale.name,
            out_dir,
        )?;
        let stats = cube_stats(&sweep.results);
        let _ = writeln!(
            out,
            "{:<8} {:>5} {:>7.3} {:>7.3} {:>9.4}  {:.2}/{:.2}/{:.2}",
            domain.name(),
            stats.n,
            stats.corr_pr,
            stats.corr_ra,
            stats.hull_volume,
            stats.mean[0],
            stats.mean[1],
            stats.mean[2],
        );
        let _ = writeln!(
            occupancy,
            "{:<8} {}",
            domain.name(),
            stats
                .octants
                .map(|c| format!("{:>6.1}%", 100.0 * c as f64 / stats.n as f64))
                .join(" ")
        );
        let _ = write!(
            csv,
            "{},{},{},{},{},{},{},{}",
            domain.name(),
            stats.n,
            stats.corr_pr,
            stats.corr_ra,
            stats.hull_volume,
            stats.mean[0],
            stats.mean[1],
            stats.mean[2],
        );
        for c in stats.octants {
            let _ = write!(csv, ",{c}");
        }
        csv.push('\n');
    }
    out.push('\n');
    out.push_str(&occupancy);
    let path = out_dir.join(format!("cross-{}.csv", scale.name));
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    std::fs::write(&path, csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    let _ = writeln!(
        out,
        "\nwrote {} (one sweep pipeline, three design spaces)",
        path.display()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::cache::SweepKey;

    fn fake_results() -> PraResults {
        // Four protocols spanning three octants with known correlations.
        PraResults::new(
            vec![10.0, 20.0, 5.0, 15.0],
            vec![0.5, 1.0, 0.25, 0.75],
            vec![0.9, 0.3, 0.6, 0.1],
            vec![0.8, 0.2, 0.55, 0.15],
        )
    }

    #[test]
    fn cube_stats_count_octants_and_correlate() {
        let s = cube_stats(&fake_results());
        assert_eq!(s.n, 4);
        assert_eq!(s.octants.iter().sum::<usize>(), 4);
        // (P≤.5, R>.5, A>.5) holds protocols 0 and 2.
        assert_eq!(s.octants[0b011], 2);
        // (P>.5, R≤.5, A≤.5) holds protocols 1 and 3.
        assert_eq!(s.octants[0b100], 2);
        // R and A nearly co-linear → correlation close to 1.
        assert!(s.corr_ra > 0.95, "corr_ra={}", s.corr_ra);
        // Four points are a tetrahedron here, not coplanar.
        assert!(s.hull_volume > 0.0);
    }

    #[test]
    fn rank_desc_is_deterministic_on_ties() {
        assert_eq!(rank_desc(&[0.5, 0.9, 0.5, 0.1]), vec![1, 0, 2, 3]);
    }

    #[test]
    fn top_block_and_preset_ranks_render() {
        let results = fake_results();
        let names: Vec<String> = (0..4).map(|i| format!("proto{i}")).collect();
        let block = top_block(&names, &results, 2);
        assert!(block.contains("top performance:"));
        assert!(block.contains("proto1"));

        let domain = dsa_reputation::adapter::register();
        let sweep = DomainSweep {
            key: SweepKey::of(
                &*domain,
                "fake",
                dsa_core::domain::Effort::Smoke,
                &dsa_core::pra::PraConfig::default(),
            ),
            names: domain.codes(),
            results: PraResults::new(
                vec![1.0; domain.size()],
                vec![1.0; domain.size()],
                vec![0.5; domain.size()],
                vec![0.5; domain.size()],
            ),
            from_cache: false,
        };
        let report = domain_dsa(&*domain, &sweep, Path::new("results"));
        assert!(report.contains("DSA on the rep design space"));
        assert!(report.contains("whitewasher"));
        assert!(report.contains("Pearson"));
    }
}
