//! Experiment scale presets.
//!
//! The paper's full PRA run took ~25 hours on a 50-node dual-core cluster
//! (§4.3 footnote: ~107 million simulations). The harness therefore
//! supports three scales; `DESIGN.md` §3 documents why subsampling
//! preserves the orderings the reproduction checks.

use dsa_core::domain::Effort;
use dsa_core::pra::PraConfig;
use dsa_core::tournament::OpponentSampling;
use dsa_swarm::engine::SimConfig;

/// A complete scale setting for the sweep-based experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Cycle-simulator configuration (peers, rounds, bandwidth, churn).
    pub sim: SimConfig,
    /// PRA configuration (runs, sampling, threads, seed).
    pub pra: PraConfig,
    /// Runs per point in the piece-level BitTorrent experiments.
    pub bt_runs: usize,
    /// Human-readable name.
    pub name: &'static str,
}

impl Scale {
    /// Smoke scale: seconds; used by unit tests and Criterion benches.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            sim: SimConfig {
                rounds: 60,
                ..SimConfig::default()
            },
            pra: PraConfig {
                performance_runs: 1,
                encounter_runs: 1,
                sampling: OpponentSampling::Sampled(6),
                threads: 0,
                seed: 0x5EED,
                ..PraConfig::default()
            },
            bt_runs: 2,
            name: "smoke",
        }
    }

    /// Laboratory scale: minutes on a laptop; the default for
    /// `experiments` runs and the recorded `EXPERIMENTS.md` numbers.
    #[must_use]
    pub fn lab() -> Self {
        Self {
            sim: SimConfig {
                rounds: 120,
                ..SimConfig::default()
            },
            pra: PraConfig {
                performance_runs: 2,
                encounter_runs: 1,
                sampling: OpponentSampling::Sampled(24),
                threads: 0,
                seed: 0x5EED,
                ..PraConfig::default()
            },
            bt_runs: 6,
            name: "lab",
        }
    }

    /// Paper scale: the §4.3 parameters (500 rounds, 100 performance
    /// runs, 10 runs per encounter, exhaustive opponents). Budget: cluster
    /// hours — provided for completeness, not for the default run.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::default(),
            pra: PraConfig {
                performance_runs: 100,
                encounter_runs: 10,
                sampling: OpponentSampling::Exhaustive,
                threads: 0,
                seed: 0x5EED,
                ..PraConfig::default()
            },
            bt_runs: 10,
            name: "paper",
        }
    }

    /// The generic effort level matching this scale, for domains driven
    /// through the registry (their simulator parameters mirror these
    /// presets domain-side).
    #[must_use]
    pub fn effort(&self) -> Effort {
        Effort::by_name(self.name).unwrap_or(Effort::Lab)
    }

    /// Looks a preset up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "lab" => Some(Self::lab()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(Scale::by_name("smoke").unwrap().name, "smoke");
        assert_eq!(Scale::by_name("lab").unwrap().name, "lab");
        assert_eq!(Scale::by_name("paper").unwrap().name, "paper");
        assert!(Scale::by_name("warp").is_none());
    }

    #[test]
    fn scales_are_ordered_by_cost() {
        let s = Scale::smoke();
        let l = Scale::lab();
        let p = Scale::paper();
        assert!(s.sim.rounds <= l.sim.rounds && l.sim.rounds <= p.sim.rounds);
        assert!(s.pra.performance_runs <= l.pra.performance_runs);
        assert!(p.pra.sampling == OpponentSampling::Exhaustive);
    }
}
