//! The `attacks` experiment: budget-vs-robustness curves per domain.
//!
//! For every registered domain × every registered attack model, runs (or
//! loads from `results/attack-<domain>-<model>-<scale>.csv`) the
//! robustness-under-budget sweep and renders one ASCII chart per domain
//! — mean robustness of the design space (y) against the adversary's
//! population budget (x), one curve per attack model — plus a summary CSV
//! at `results/attacks-<scale>.csv`. This is the Robustness axis
//! re-measured against an adversary with resources instead of the single
//! canned deviant inside each space.

use crate::scale::Scale;
use dsa_attacks::sweep::{AttackConfig, AttackSweep};
use dsa_stats::ascii;
use std::fmt::Write as _;
use std::path::Path;

/// Builds the sweep configuration for a scale, with an optional budget
/// grid override (`experiments --budgets`).
#[must_use]
pub fn attack_config(scale: &Scale, budgets: Option<&[f64]>) -> AttackConfig {
    AttackConfig {
        budgets: budgets.map_or_else(|| dsa_attacks::DEFAULT_BUDGETS.to_vec(), <[f64]>::to_vec),
        encounter_runs: scale.pra.encounter_runs,
        threads: scale.pra.threads,
        seed: scale.pra.seed,
    }
}

/// Runs the full cross-domain attack experiment.
///
/// # Errors
///
/// Returns an error when a sweep cache is corrupt or a CSV cannot be
/// written.
pub fn attacks(scale: &Scale, out_dir: &Path, budgets: Option<&[f64]>) -> Result<String, String> {
    let domains = crate::register_domains();
    let models = dsa_attacks::register_builtin();
    let cfg = attack_config(scale, budgets);
    // The chart's x axis spans the measured budget range: the first grid
    // entry sits at the left edge, so no column is drawn left of (i.e.
    // without) data — the step renderer would otherwise default to 1.0
    // there and fabricate perfect robustness below the smallest budget.
    let min_budget = cfg.budgets.iter().copied().fold(1.0f64, f64::min);
    let max_budget = cfg.budgets.iter().copied().fold(0.0f64, f64::max);
    let span = (max_budget - min_budget).max(f64::EPSILON);

    let mut out = format!(
        "Robustness under attacker budget (scale: {}, budgets {:?})\n",
        scale.name, cfg.budgets
    );
    let mut csv = String::from("domain,model,budget,mean_robustness,surviving_share\n");
    for domain in &domains {
        let _ = writeln!(
            out,
            "\n-- {} ({} protocols) -- mean robustness vs budget (x: {min_budget:.2}..{max_budget:.2})",
            domain.name(),
            domain.size()
        );
        let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        let mut table = format!(
            "{:<11} {}\n",
            "model",
            cfg.budgets
                .iter()
                .map(|b| format!("{b:>6.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for model in &models {
            let sweep = AttackSweep::load_or_compute(
                &**domain,
                &**model,
                scale.effort(),
                &cfg,
                scale.name,
                out_dir,
            )?;
            let means = sweep.mean_robustness();
            let surviving = sweep.surviving_share(0.5);
            let _ = writeln!(
                table,
                "{:<11} {}",
                model.name(),
                means
                    .iter()
                    .map(|m| format!("{m:>6.3}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            series.push((
                model.name().to_string(),
                cfg.budgets
                    .iter()
                    .zip(&means)
                    .map(|(&b, &m)| ((b - min_budget) / span, m))
                    .collect(),
            ));
            for ((&b, &m), &s) in cfg.budgets.iter().zip(&means).zip(&surviving) {
                let _ = writeln!(csv, "{},{},{b},{m},{s}", domain.name(), model.name());
            }
            let _ = writeln!(
                out,
                "   {} sweep {}: {}",
                model.name(),
                if sweep.from_cache {
                    "loaded from cache"
                } else {
                    "computed and cached"
                },
                sweep.path(out_dir).display()
            );
        }
        out.push_str(&ascii::ccdf_curves(&series, 60, 12));
        out.push_str(&table);
    }

    let path = out_dir.join(format!("attacks-{}.csv", scale.name));
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    std::fs::write(&path, csv).map_err(|e| format!("writing {}: {e}", path.display()))?;
    let _ = writeln!(
        out,
        "\nwrote {} ({} domains × {} attack models)",
        path.display(),
        domains.len(),
        models.len()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_tracks_scale_and_budget_override() {
        let scale = Scale::smoke();
        let default = attack_config(&scale, None);
        assert_eq!(default.budgets, dsa_attacks::DEFAULT_BUDGETS.to_vec());
        assert_eq!(default.encounter_runs, scale.pra.encounter_runs);
        assert_eq!(default.seed, scale.pra.seed);
        let grid = [0.1, 0.25];
        let overridden = attack_config(&scale, Some(&grid));
        assert_eq!(overridden.budgets, vec![0.1, 0.25]);
    }

    /// The full experiment at smoke scale on the two small domains would
    /// still sweep the 3270-protocol swarm space; exercise the pipeline
    /// against the gossip domain alone instead.
    #[test]
    fn gossip_attack_sweep_runs_and_caches() {
        let dir = std::env::temp_dir().join(format!("dsa-attackfig-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = Scale::smoke();
        let domain = dsa_gossip::adapter::register();
        let model = dsa_attacks::models::Sybil::default();
        let cfg = AttackConfig {
            budgets: vec![0.1, 0.5],
            encounter_runs: 1,
            threads: 0,
            seed: scale.pra.seed,
        };
        let sweep =
            AttackSweep::load_or_compute(&*domain, &model, scale.effort(), &cfg, scale.name, &dir)
                .expect("sweep");
        assert!(!sweep.from_cache);
        assert!(dir.join("attack-gossip-sybil-smoke.csv").exists());
        let cached =
            AttackSweep::load_or_compute(&*domain, &model, scale.effort(), &cfg, scale.name, &dir)
                .expect("cached");
        assert!(cached.from_cache);
        assert_eq!(cached.to_csv(), sweep.to_csv());
        // More adversary budget never helps the defenders on average.
        let means = sweep.mean_robustness();
        assert!(means[0] >= means[1] - 1e-9, "means {means:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
