//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--scale smoke|lab|paper] [--seed N] [--out DIR] [--threads N]
//!             [--budgets B1,B2,...] [--mutants P1,P2,...]
//!             [--response pra,attack,evolution] [--metrics] [--trace]
//!             [--alloc] [--obs-listen ADDR] <id>...
//!
//! ids: fig1 table1 table2 nash fig2 fig3 fig4 fig5 fig6 fig7 fig8
//!      table3 churn corr9010 birds fig9a fig9b fig9c fig10 gossip
//!      rep whitewash cross attacks evolution attribution profile
//!      search all
//! ```
//!
//! Sweep-based experiments share content-addressed caches at
//! `<out>/pra-<domain>-<scale>.csv` — the swarm sweep feeds fig2–fig8,
//! table3, birds and corr9010; the gossip and reputation sweeps feed
//! `gossip`, `rep` and the cross-domain comparison (`cross`). The
//! `attacks` experiment caches one robustness-under-budget sweep per
//! (domain, attack model) at `<out>/attack-<domain>-<model>-<scale>.csv`
//! (`--budgets` overrides the default 5%–50% grid and is part of the
//! stamp). The `evolution` experiment caches one empirical payoff matrix
//! per domain at `<out>/evo-<domain>-<scale>.csv` (`--mutants` adds
//! protocols to each domain's candidate set and is part of the stamp).
//! The `attribution` experiment derives per-dimension effect-size tables
//! from those caches (one per (domain, response) at
//! `<out>/attrib-<domain>-<response>-<scale>.csv`; `--response` selects
//! which surfaces to explain, default `pra`). A cache stamped with a
//! different space hash, scale, seed, parameter fingerprint, attack,
//! evo or attrib key is recomputed automatically; delete the file to
//! force a re-run.
//!
//! `--metrics` turns the [`dsa_obs`] counters/gauges/histograms on for
//! the whole run and `--trace` additionally records spans; both print an
//! observability epilogue and export `<out>/obs-experiments-<scale>.csv`.
//! `--obs-listen ADDR` (implies `--metrics`) additionally serves the
//! live registry over HTTP while the run executes — `GET /metrics`
//! (Prometheus text exposition) and `GET /snapshot` (JSON), scrapeable
//! mid-run. `--alloc` (implies `--metrics`) turns on the runtime
//! counting allocator: `mem.alloc.{count,bytes}` and the per-run
//! `mem.run_allocs.*` histograms join the RSS and arena-footprint
//! gauges that `--metrics` already samples. The `profile` id renders the per-engine time-attribution
//! figure (it manages — and resets — the obs registries itself, so
//! scrape monotonicity holds for every id *except* `profile`).

use dsa_bench::attackfig;
use dsa_bench::attribfig;
use dsa_bench::btfigs;
use dsa_bench::evofig;
use dsa_bench::figures;
use dsa_bench::gossipfig;
use dsa_bench::nashdemo;
use dsa_bench::prafig;
use dsa_bench::profilefig;
use dsa_bench::regress;
use dsa_bench::repfig;
use dsa_bench::scale::Scale;
use dsa_bench::sweep::SweepData;
use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_gametheory::classes::ClassParams;
use std::path::PathBuf;
use std::process::ExitCode;

const ALL_IDS: &[&str] = &[
    "fig1",
    "table1",
    "table2",
    "nash",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table3",
    "churn",
    "corr9010",
    "birds",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig10",
    "gossip",
    "rep",
    "whitewash",
    "cross",
    "attacks",
    "evolution",
    "attribution",
    "profile",
    "search",
];

struct Options {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    budgets: Option<Vec<f64>>,
    mutants: Vec<String>,
    responses: Vec<dsa_attribution::ResponseKind>,
    metrics: bool,
    trace: bool,
    alloc: bool,
    obs_listen: Option<String>,
    ids: Vec<String>,
}

// The runtime counting allocator behind --alloc. Under the count-allocs
// test feature the dsa_bench library installs its own (unconditional)
// delegating allocator, so gate this one off — a process gets exactly
// one #[global_allocator].
#[cfg(not(feature = "count-allocs"))]
#[global_allocator]
static GLOBAL_ALLOC: dsa_obs::alloc::CountingAlloc = dsa_obs::alloc::CountingAlloc;

fn parse_args() -> Result<Options, String> {
    let mut scale = Scale::lab();
    let mut seed: Option<u64> = None;
    let mut out = PathBuf::from("results");
    let mut threads: Option<usize> = None;
    let mut budgets: Option<Vec<f64>> = None;
    let mut mutants: Vec<String> = Vec::new();
    let mut responses = vec![dsa_attribution::ResponseKind::Pra];
    let mut metrics = false;
    let mut trace = false;
    let mut alloc = false;
    let mut obs_listen: Option<String> = None;
    let mut ids = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = Scale::by_name(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|e| format!("bad seed: {e}"))?);
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                threads = Some(v.parse().map_err(|e| format!("bad thread count: {e}"))?);
            }
            "--budgets" => {
                let v = args
                    .next()
                    .ok_or("--budgets needs a comma-separated list")?;
                let grid: Vec<f64> = v
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .map_err(|e| format!("bad budget '{t}': {e}"))
                    })
                    .collect::<Result<_, String>>()?;
                if grid.iter().any(|&b| !(0.0..1.0).contains(&b) || b == 0.0) {
                    return Err(format!("budgets must lie in (0,1), got {grid:?}"));
                }
                if grid.windows(2).any(|w| w[1] <= w[0]) {
                    return Err(format!("budgets must be strictly increasing, got {grid:?}"));
                }
                budgets = Some(grid);
            }
            "--mutants" => {
                let v = args
                    .next()
                    .ok_or("--mutants needs a comma-separated token list")?;
                mutants.extend(v.split(',').map(|t| t.trim().to_string()));
            }
            "--response" => {
                let v = args
                    .next()
                    .ok_or("--response needs a comma-separated list (pra|attack|evolution)")?;
                responses = attribfig::parse_responses(&v)?;
            }
            "--metrics" => metrics = true,
            "--trace" => trace = true,
            "--alloc" => alloc = true,
            "--obs-listen" => {
                let v = args
                    .next()
                    .ok_or("--obs-listen needs an address (e.g. 127.0.0.1:9464)")?;
                obs_listen = Some(v);
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: experiments [--scale smoke|lab|paper] [--seed N] [--out DIR] \
                     [--threads N] [--budgets B1,B2,...] [--mutants P1,P2,...] \
                     [--response pra,attack,evolution] [--metrics] [--trace] [--alloc] \
                     [--obs-listen ADDR] <id>...\nids: {} all",
                    ALL_IDS.join(" ")
                ));
            }
            id if id.starts_with('-') => return Err(format!("unknown flag '{id}'")),
            id => ids.push(id.to_string()),
        }
    }
    if let Some(s) = seed {
        scale.pra.seed = s;
    }
    if let Some(t) = threads {
        scale.pra.threads = t;
    }
    if ids.is_empty() {
        return Err("no experiment ids given (try 'all')".to_string());
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| (*s).to_string()).collect();
    }
    Ok(Options {
        scale,
        seed: seed.unwrap_or(0x5EED),
        out,
        budgets,
        mutants,
        responses,
        metrics,
        trace,
        alloc,
        obs_listen,
        ids,
    })
}

fn main() -> ExitCode {
    // Sample the clock once at startup; CSV stamps and journal records
    // receive this value instead of reading the clock themselves.
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let t0 = std::time::Instant::now();
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if opts.alloc {
        // Counting without a registry to land in would be invisible;
        // --alloc implies --metrics.
        dsa_obs::alloc::enable();
    }
    if opts.trace {
        dsa_obs::enable_trace();
    } else if opts.metrics || opts.obs_listen.is_some() || opts.alloc {
        // An exposition endpoint over a disabled registry would scrape
        // empty forever; --obs-listen implies --metrics.
        dsa_obs::enable_metrics();
    }
    if dsa_obs::metrics_enabled() {
        // Background RSS sampling + armed passive hooks: live scrapes
        // and `obs top` see mem.rss_bytes move during the run.
        dsa_obs::mem::spawn_sampler(dsa_obs::mem::SAMPLER_INTERVAL);
    }
    if let Some(addr) = &opts.obs_listen {
        match dsa_obs::serve::spawn(addr, dsa_obs::serve::Mode::Live) {
            Ok(bound) => eprintln!(
                "[experiments] obs: serving /metrics /snapshot /healthz on http://{bound}/"
            ),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The sweep is shared by several ids; compute lazily, once.
    let mut sweep: Option<SweepData> = None;
    let mut get_sweep = |scale: &Scale, out: &PathBuf| -> Result<SweepData, String> {
        if let Some(s) = &sweep {
            return Ok(s.clone());
        }
        eprintln!(
            "[experiments] running PRA sweep at scale '{}' (cached at {}) ...",
            scale.name,
            SweepData::cache_path(scale, out).display()
        );
        let data = SweepData::load_or_compute(scale, out)?;
        sweep = Some(data.clone());
        Ok(data)
    };

    let params = ClassParams::example_swarm();
    let bt_cfg = BtConfig::default();

    for id in &opts.ids {
        let header = format!("==== {id} (scale: {}) ====", opts.scale.name);
        println!("\n{header}");
        let body: Result<String, String> = match id.as_str() {
            "fig1" => Ok(nashdemo::fig1(10.0, 4.0)),
            "table1" => Ok(nashdemo::table1(&params)),
            "table2" => Ok(render_table2()),
            "nash" => Ok(nashdemo::nash_analysis(&params)),
            "fig2" => get_sweep(&opts.scale, &opts.out).map(|d| figures::fig2(&d)),
            "fig3" => get_sweep(&opts.scale, &opts.out).map(|d| figures::fig3_fig4(&d, false)),
            "fig4" => get_sweep(&opts.scale, &opts.out).map(|d| figures::fig3_fig4(&d, true)),
            "fig5" => get_sweep(&opts.scale, &opts.out).map(|d| figures::fig5(&d)),
            "fig6" => get_sweep(&opts.scale, &opts.out).map(|d| figures::fig6_fig7(&d, false)),
            "fig7" => get_sweep(&opts.scale, &opts.out).map(|d| figures::fig6_fig7(&d, true)),
            "fig8" => get_sweep(&opts.scale, &opts.out).map(|d| figures::fig8(&d)),
            "table3" => get_sweep(&opts.scale, &opts.out).map(|d| regress::table3(&d).render()),
            "birds" => get_sweep(&opts.scale, &opts.out).map(|d| figures::birds_placement(&d)),
            "corr9010" => {
                get_sweep(&opts.scale, &opts.out).map(|d| figures::corr_9010(&d, &opts.scale))
            }
            "churn" => Ok(figures::churn_experiment(&opts.scale)),
            "fig9a" => Ok(btfigs::fig9(
                ClientKind::LoyalWhenNeeded,
                ClientKind::BitTorrent,
                opts.scale.bt_runs,
                &bt_cfg,
                opts.seed,
            )),
            "fig9b" => Ok(btfigs::fig9(
                ClientKind::Birds,
                ClientKind::BitTorrent,
                opts.scale.bt_runs,
                &bt_cfg,
                opts.seed ^ 0xB,
            )),
            "fig9c" => Ok(btfigs::fig9(
                ClientKind::LoyalWhenNeeded,
                ClientKind::Birds,
                opts.scale.bt_runs,
                &bt_cfg,
                opts.seed ^ 0xC,
            )),
            "fig10" => Ok(btfigs::fig10(opts.scale.bt_runs, &bt_cfg, opts.seed ^ 0x10)),
            "gossip" => gossipfig::gossip_dsa(&opts.scale, &opts.out),
            "rep" => repfig::reputation_dsa(&opts.scale, &opts.out),
            "whitewash" => Ok(repfig::whitewash_attack(opts.seed ^ 0x3E9)),
            "cross" => prafig::cross_domain(&opts.scale, &opts.out),
            "attacks" => attackfig::attacks(&opts.scale, &opts.out, opts.budgets.as_deref()),
            "evolution" => evofig::evolution(&opts.scale, &opts.out, &opts.mutants),
            "attribution" => attribfig::attribution(&opts.scale, &opts.out, &opts.responses),
            "profile" => profilefig::profile(&opts.scale, &opts.out, ts_ms),
            "search" => Ok(render_search(&opts.scale)),
            other => Err(format!("unknown experiment id '{other}'")),
        };
        match body {
            Ok(text) => println!("{text}"),
            Err(msg) => {
                eprintln!("error in {id}: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.metrics || opts.trace || opts.alloc || opts.obs_listen.is_some() {
        // Final memory boundary: one last RSS reading into the registry,
        // then fold the allocation tallies (no-op without --alloc) into
        // the snapshot the CSV, journal and epilogue all render from.
        dsa_obs::mem::sample();
        let mut snap = dsa_obs::snapshot();
        dsa_obs::alloc::publish_into(&mut snap);
        if !snap.is_empty() {
            println!("==== observability ====");
            print!("{}", snap.render());
            let threads = dsa_core::parallel::effective_threads(opts.scale.pra.threads, usize::MAX);
            let export = dsa_obs::ExportMeta {
                run: format!("experiments-{}", opts.scale.name),
                bin: "experiments".to_string(),
                scale: Some(opts.scale.name.to_string()),
                threads,
                ts_ms,
                mem: dsa_obs::journal::MemBlock::from_registries(&snap),
            };
            match dsa_obs::write_csv(&opts.out, &export, &snap) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(msg) => eprintln!("obs export failed: {msg}"),
            }
            // Journal the run's provenance. (The `profile` id journals its
            // own per-section record under the command `experiments
            // profile`; this epilogue record carries the full flag list,
            // so the two cohorts never mix in diff/regress windows.)
            let meta = dsa_obs::RunMeta {
                run_id: format!(
                    "experiments-{}-{ts_ms}-{}",
                    opts.scale.name,
                    std::process::id()
                ),
                binary: "experiments".to_string(),
                // The journaled command drops `--obs-listen <addr>` and
                // `--alloc`: they change what is observed, not what runs,
                // and diff/regress group comparable runs by command
                // string — a mem-gated cohort must include the baseline
                // runs that had telemetry off.
                command: {
                    let mut kept: Vec<&str> = Vec::new();
                    let mut skip_value = false;
                    for a in raw_args.iter().map(String::as_str) {
                        if skip_value {
                            skip_value = false;
                        } else if a == "--obs-listen" {
                            skip_value = true;
                        } else if a != "--alloc" {
                            kept.push(a);
                        }
                    }
                    format!("experiments {}", kept.join(" "))
                },
                timestamp_ms: ts_ms,
                scale: Some(opts.scale.name.to_string()),
                domain: None,
                seed: Some(opts.scale.pra.seed),
                threads,
            };
            let wall_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
            let record = dsa_obs::JournalRecord::from_snapshot(meta, wall_ms, &snap);
            match dsa_obs::journal::append(&opts.out, &record, dsa_obs::journal::DEFAULT_MAX_BYTES)
            {
                Ok(path) => println!("journaled {} to {}", record.meta.run_id, path.display()),
                Err(msg) => eprintln!("journal append failed: {msg}"),
            }
        }
    }
    ExitCode::SUCCESS
}

fn render_table2() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("Table 2: existing protocols mapped to the generic design space\n");
    for row in dsa_swarm::presets::table2() {
        let _ = writeln!(
            out,
            "{:<24} stranger: {:<32} selection: {:<36} allocation: {:<28} → nearest actualized: {}",
            row.system,
            row.stranger_policy,
            row.selection_function,
            row.resource_allocation,
            row.nearest
        );
    }
    out
}

/// The §7 future-work demo: heuristic exploration instead of a full sweep.
fn render_search(scale: &Scale) -> String {
    use std::fmt::Write as _;
    let space = dsa_swarm::protocol::design_space();
    let sim = dsa_swarm::adapter::SwarmSim {
        config: scale.sim.clone(),
    };
    // Objective: homogeneous performance at one seed (cheap proxy).
    let objective = |idx: usize| {
        dsa_core::sim::EncounterSim::run_homogeneous(
            &sim,
            &dsa_swarm::protocol::SwarmProtocol::from_index(idx),
            scale.pra.seed,
        )
    };
    let hc = dsa_core::search::hill_climb(&space, objective, 4, 400, scale.pra.seed);
    let ev = dsa_core::search::evolve(&space, objective, 6, 12, 20, 0.3, 400, scale.pra.seed);
    let mut out = String::from("Heuristic design-space exploration (§7 future work)\n");
    let _ = writeln!(
        out,
        "hill-climb : best {} (perf proxy {:.1}) in {} evaluations of {}",
        dsa_swarm::protocol::SwarmProtocol::from_index(hc.best_index),
        hc.best_value,
        hc.evaluations,
        space.size()
    );
    let _ = writeln!(
        out,
        "evolution  : best {} (perf proxy {:.1}) in {} evaluations of {}",
        dsa_swarm::protocol::SwarmProtocol::from_index(ev.best_index),
        ev.best_value,
        ev.evaluations,
        space.size()
    );
    out
}
