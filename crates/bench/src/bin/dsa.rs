//! `dsa` — interactive command-line front end to the library.
//!
//! Where `experiments` regenerates the paper, `dsa` answers ad-hoc
//! questions about individual protocols:
//!
//! ```text
//! dsa protocols [filter]             list protocols (substring filter on the code)
//! dsa describe <index|preset>        decode a protocol
//! dsa simulate <index|preset> [--rounds N] [--peers N] [--seed N] [--churn R]
//! dsa encounter <a> <b> [--frac F] [--runs N] [--seed N]
//! dsa pra <p1> <p2> [...]            PRA over an ad-hoc protocol set
//! dsa bt <kind-a> [kind-b] [--frac F] [--runs N]
//! dsa rep protocols [filter]         the reputation domain's protocol list
//! dsa rep describe <index|preset>
//! dsa rep simulate <index|preset> [--rounds N] [--peers N] [--seed N] [--churn R]
//! dsa rep encounter <a> <b> [--frac F] [--runs N] [--seed N]
//! dsa rep pra [<p1> <p2> ... | --all] [--seed N] [--sample K]
//! ```
//!
//! Presets: bittorrent, birds, loyal, sorts, random, freerider.
//! BT kinds: bittorrent, birds, loyal, sorts, random.
//! Rep presets: baseline, tft, bartercast, elitist, prober, freerider,
//! whitewasher.

use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::experiment::mixed_runs;
use dsa_core::pra::{quantify, PraConfig};
use dsa_core::sim::EncounterSim;
use dsa_core::tournament::OpponentSampling;
use dsa_reputation::adapter::RepSim;
use dsa_reputation::presets as rep_presets;
use dsa_reputation::protocol::{RepProtocol, REP_SPACE_SIZE};
use dsa_stats::ci::ConfidenceInterval;
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::engine::SimConfig;
use dsa_swarm::metrics;
use dsa_swarm::presets;
use dsa_swarm::protocol::{SwarmProtocol, SPACE_SIZE};
use dsa_workloads::churn::ChurnModel;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("protocols") => cmd_protocols(&args[1..]),
        Some("describe") => cmd_describe(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("encounter") => cmd_encounter(&args[1..]),
        Some("pra") => cmd_pra(&args[1..]),
        Some("bt") => cmd_bt(&args[1..]),
        Some("rep") => cmd_rep(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{}", HELP);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "dsa — Design Space Analysis toolkit
commands: protocols, describe, simulate, encounter, pra, bt,
          rep {protocols|describe|simulate|encounter|pra} (see crate docs)";

fn parse_protocol(token: &str) -> Result<SwarmProtocol, String> {
    match token {
        "bittorrent" | "bt" => Ok(presets::bittorrent()),
        "birds" => Ok(presets::birds()),
        "loyal" => Ok(presets::loyal_when_needed()),
        "sorts" | "sort-s" => Ok(presets::sort_s()),
        "random" => Ok(presets::random_rank()),
        "freerider" => Ok(presets::freerider()),
        other => {
            let idx: usize = other
                .parse()
                .map_err(|_| format!("'{other}' is neither a preset nor an index"))?;
            if idx >= SPACE_SIZE {
                return Err(format!("index {idx} out of 0..{SPACE_SIZE}"));
            }
            Ok(SwarmProtocol::from_index(idx))
        }
    }
}

fn parse_kind(token: &str) -> Result<ClientKind, String> {
    match token {
        "bittorrent" | "bt" => Ok(ClientKind::BitTorrent),
        "birds" => Ok(ClientKind::Birds),
        "loyal" => Ok(ClientKind::LoyalWhenNeeded),
        "sorts" | "sort-s" => Ok(ClientKind::SortS),
        "random" => Ok(ClientKind::RandomRank),
        other => Err(format!("unknown client kind '{other}'")),
    }
}

/// Parsed `--flag value` pairs.
type Flags = Vec<(String, String)>;

/// Pulls `--flag value` pairs out of an argument list; returns
/// (positional, lookup).
fn split_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.iter().find(|(n, _)| n == name) {
        None => Ok(default),
        Some((_, v)) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
    }
}

fn cmd_protocols(args: &[String]) -> Result<(), String> {
    let filter = args.first().cloned().unwrap_or_default();
    let mut count = 0;
    for p in SwarmProtocol::all() {
        let code = p.to_string();
        if code.contains(&filter) {
            println!("{:>5}  {code}", p.index());
            count += 1;
        }
    }
    eprintln!("({count} of {SPACE_SIZE} protocols)");
    Ok(())
}

fn cmd_describe(args: &[String]) -> Result<(), String> {
    let token = args.first().ok_or("describe needs a protocol")?;
    let p = parse_protocol(token)?;
    println!("index      : {}", p.index());
    println!("code       : {p}");
    println!(
        "stranger   : {:?} × {}",
        p.stranger_policy, p.stranger_slots
    );
    println!("candidates : {:?}", p.candidates);
    println!("ranking    : {:?}", p.ranking);
    println!("partners   : {}", p.partner_slots);
    println!("allocation : {:?}", p.allocation);
    println!("birds-like : {}", p.is_birds_family());
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let token = pos.first().ok_or("simulate needs a protocol")?;
    let p = parse_protocol(token)?;
    let rounds = flag(&flags, "rounds", 300usize)?;
    let peers = flag(&flags, "peers", 50usize)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let churn = flag(&flags, "churn", 0.0f64)?;
    let config = SimConfig {
        peers,
        rounds,
        churn: if churn > 0.0 {
            ChurnModel::PerRound { rate: churn }
        } else {
            ChurnModel::None
        },
        ..SimConfig::default()
    };
    let out = dsa_swarm::engine::run(&[p], &vec![0; peers], &config, seed);
    println!("protocol    : {p}");
    println!("throughput  : {:.2} KiB/round/peer", out.throughput);
    println!("utilization : {:.3}", metrics::utilization(&out));
    println!("fairness    : {:.3} (Jain)", metrics::jain_fairness(&out));
    let (fast, slow) = metrics::fast_slow_split(&out);
    println!("fast / slow : {fast:.2} / {slow:.2}");
    Ok(())
}

fn cmd_encounter(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if pos.len() < 2 {
        return Err("encounter needs two protocols".into());
    }
    let a = parse_protocol(&pos[0])?;
    let b = parse_protocol(&pos[1])?;
    let frac = flag(&flags, "frac", 0.5f64)?;
    let runs = flag(&flags, "runs", 5usize)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let sim = SwarmSim {
        config: SimConfig {
            rounds: 200,
            ..SimConfig::default()
        },
    };
    let mut wins = 0;
    let mut ua = Vec::new();
    let mut ub = Vec::new();
    for r in 0..runs {
        let (x, y) = sim.run_encounter(&a, &b, frac, seed.wrapping_add(r as u64));
        if x > y {
            wins += 1;
        }
        ua.push(x);
        ub.push(y);
    }
    println!("{a} ({frac:.0}% of swarm) vs {b}");
    println!("  group A mean utility: {}", ConfidenceInterval::ci95(&ua));
    println!("  group B mean utility: {}", ConfidenceInterval::ci95(&ub));
    println!("  A wins {wins}/{runs} runs");
    Ok(())
}

fn cmd_pra(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if pos.len() < 2 {
        return Err("pra needs at least two protocols".into());
    }
    let protocols: Vec<SwarmProtocol> = pos
        .iter()
        .map(|t| parse_protocol(t))
        .collect::<Result<_, _>>()?;
    let seed = flag(&flags, "seed", 0x5EEDu64)?;
    let sim = SwarmSim {
        config: SimConfig {
            rounds: 150,
            ..SimConfig::default()
        },
    };
    let config = PraConfig {
        performance_runs: 3,
        encounter_runs: 2,
        sampling: OpponentSampling::Exhaustive,
        seed,
        ..PraConfig::default()
    };
    let results = quantify(&sim, &protocols, &config);
    println!(
        "{:<24} {:>11} {:>10} {:>14}",
        "protocol", "Performance", "Robustness", "Aggressiveness"
    );
    for (i, p) in protocols.iter().enumerate() {
        let pt = results.point(i);
        println!(
            "{:<24} {:>11.3} {:>10.3} {:>14.3}",
            p.to_string(),
            pt.performance,
            pt.robustness,
            pt.aggressiveness
        );
    }
    Ok(())
}

fn cmd_bt(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let a = parse_kind(pos.first().ok_or("bt needs a client kind")?)?;
    let b = pos.get(1).map(|t| parse_kind(t)).transpose()?.unwrap_or(a);
    let frac = flag(&flags, "frac", if pos.len() > 1 { 0.5 } else { 1.0 })?;
    let runs = flag(&flags, "runs", 5usize)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let config = BtConfig::default();
    let (ta, tb) = mixed_runs(a, b, frac, runs, &config, seed);
    if !ta.is_empty() {
        println!("{:<20} {}", a.name(), ConfidenceInterval::ci95(&ta));
    }
    if !tb.is_empty() {
        println!("{:<20} {}", b.name(), ConfidenceInterval::ci95(&tb));
    }
    if !ta.is_empty() && !tb.is_empty() {
        let sig = dsa_stats::nonparametric::significantly_different(&ta, &tb, 0.05);
        println!("difference significant at 5% (Mann-Whitney): {sig}");
    }
    Ok(())
}

// ---- the reputation domain ------------------------------------------------

fn parse_rep_protocol(token: &str) -> Result<RepProtocol, String> {
    match token {
        "baseline" => Ok(RepProtocol::baseline()),
        "tft" => Ok(rep_presets::private_tft()),
        "bartercast" | "bc" => Ok(rep_presets::bartercast()),
        "elitist" => Ok(rep_presets::elitist()),
        "prober" => Ok(rep_presets::prober()),
        "freerider" => Ok(rep_presets::freerider()),
        "whitewasher" | "ww" => Ok(rep_presets::whitewasher()),
        other => {
            let idx: usize = other
                .parse()
                .map_err(|_| format!("'{other}' is neither a rep preset nor an index"))?;
            if idx >= REP_SPACE_SIZE {
                return Err(format!("index {idx} out of 0..{REP_SPACE_SIZE}"));
            }
            Ok(RepProtocol::from_index(idx))
        }
    }
}

fn cmd_rep(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("protocols") => cmd_rep_protocols(&args[1..]),
        Some("describe") => cmd_rep_describe(&args[1..]),
        Some("simulate") => cmd_rep_simulate(&args[1..]),
        Some("encounter") => cmd_rep_encounter(&args[1..]),
        Some("pra") => cmd_rep_pra(&args[1..]),
        Some(other) => Err(format!("unknown rep command '{other}' (try --help)")),
        None => Err("rep needs a subcommand: protocols, describe, simulate, encounter, pra".into()),
    }
}

fn cmd_rep_protocols(args: &[String]) -> Result<(), String> {
    let filter = args.first().cloned().unwrap_or_default();
    let mut count = 0;
    for p in RepProtocol::all() {
        let code = p.to_string();
        if code.contains(&filter) {
            println!("{:>5}  {code}", p.index());
            count += 1;
        }
    }
    eprintln!("({count} of {REP_SPACE_SIZE} protocols)");
    Ok(())
}

fn cmd_rep_describe(args: &[String]) -> Result<(), String> {
    let token = args.first().ok_or("rep describe needs a protocol")?;
    let p = parse_rep_protocol(token)?;
    println!("index       : {}", p.index());
    println!("code        : {p}");
    println!("source      : {:?}", p.source);
    println!("maintenance : {:?}", p.maintenance);
    println!("stranger    : {:?}", p.stranger);
    println!("response    : {:?}", p.response);
    println!("identity    : {:?}", p.identity);
    Ok(())
}

fn rep_config(flags: &[(String, String)]) -> Result<dsa_reputation::engine::RepConfig, String> {
    let mut config = dsa_reputation::engine::RepConfig::default();
    config.rounds = flag(flags, "rounds", config.rounds)?;
    config.peers = flag(flags, "peers", config.peers)?;
    if config.peers < 2 {
        return Err(format!("--peers must be at least 2, got {}", config.peers));
    }
    let churn = flag(flags, "churn", 0.0f64)?;
    if churn > 0.0 {
        config.churn = ChurnModel::PerRound { rate: churn };
    }
    Ok(config)
}

fn cmd_rep_simulate(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let token = pos.first().ok_or("rep simulate needs a protocol")?;
    let p = parse_rep_protocol(token)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let config = rep_config(&flags)?;
    let u = dsa_reputation::engine::run(&[p], &vec![0; config.peers], &config, seed);
    let mean = u.iter().sum::<f64>() / u.len() as f64;
    let mut sorted = u.clone();
    sorted.sort_by(f64::total_cmp);
    println!("protocol      : {p}");
    println!("mean utility  : {mean:.2} service units/peer");
    println!(
        "min / median / max : {:.2} / {:.2} / {:.2}",
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1]
    );
    Ok(())
}

fn cmd_rep_encounter(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if pos.len() < 2 {
        return Err("rep encounter needs two protocols".into());
    }
    let a = parse_rep_protocol(&pos[0])?;
    let b = parse_rep_protocol(&pos[1])?;
    let frac = flag(&flags, "frac", 0.5f64)?;
    let runs = flag(&flags, "runs", 5usize)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let sim = RepSim {
        config: rep_config(&flags)?,
    };
    let mut wins = 0;
    let mut ua = Vec::new();
    let mut ub = Vec::new();
    for r in 0..runs {
        let (x, y) = sim.run_encounter(&a, &b, frac, seed.wrapping_add(r as u64));
        if x > y {
            wins += 1;
        }
        ua.push(x);
        ub.push(y);
    }
    println!("{a} ({:.0}% of community) vs {b}", frac * 100.0);
    println!("  group A mean utility: {}", ConfidenceInterval::ci95(&ua));
    println!("  group B mean utility: {}", ConfidenceInterval::ci95(&ub));
    println!("  A wins {wins}/{runs} runs");
    Ok(())
}

fn cmd_rep_pra(args: &[String]) -> Result<(), String> {
    // `--all` is a bare switch; strip it before the `--flag value` parse
    // so it does not swallow the next token.
    let explicit_all = args.iter().any(|a| a == "--all");
    let args: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--all")
        .cloned()
        .collect();
    let (pos, flags) = split_flags(&args)?;
    let seed = flag(&flags, "seed", 0x5EEDu64)?;
    let sample = flag(&flags, "sample", 20usize)?;
    let all = explicit_all || pos.is_empty();
    let protocols: Vec<RepProtocol> = if all {
        RepProtocol::all().collect()
    } else {
        pos.iter()
            .map(|t| parse_rep_protocol(t))
            .collect::<Result<_, _>>()?
    };
    if protocols.len() < 2 {
        return Err("rep pra needs at least two protocols (or none for the full space)".into());
    }
    let sim = RepSim {
        config: dsa_reputation::engine::RepConfig::fast(),
    };
    let config = PraConfig {
        performance_runs: 3,
        encounter_runs: 2,
        sampling: if all {
            OpponentSampling::Sampled(sample)
        } else {
            OpponentSampling::Exhaustive
        },
        seed,
        ..PraConfig::default()
    };
    let results = quantify(&sim, &protocols, &config);
    println!(
        "{:<55} {:>11} {:>10} {:>14}",
        "protocol", "Performance", "Robustness", "Aggressiveness"
    );
    // For the full space print the 10 strongest by robustness; an ad-hoc
    // set prints in the order given.
    let order: Vec<usize> = if all {
        results
            .ranked_by(|p| p.robustness)
            .into_iter()
            .take(10)
            .collect()
    } else {
        (0..protocols.len()).collect()
    };
    for i in order {
        let pt = results.point(i);
        println!(
            "{:<55} {:>11.3} {:>10.3} {:>14.3}",
            protocols[i].to_string(),
            pt.performance,
            pt.robustness,
            pt.aggressiveness
        );
    }
    if all {
        println!("(top 10 of {} by robustness)", protocols.len());
    }
    Ok(())
}
