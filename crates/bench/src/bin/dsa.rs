//! `dsa` — interactive command-line front end to the library.
//!
//! Where `experiments` regenerates the paper, `dsa` answers ad-hoc
//! questions about individual protocols. Every registered domain gets
//! the same command family through one generic dispatcher:
//!
//! ```text
//! dsa <domain> protocols [filter]        list protocols (substring filter on the code)
//! dsa <domain> describe <index|preset>   decode a protocol
//! dsa <domain> simulate <index|preset> [--seed N] [--churn R] [--effort smoke|lab|paper]
//! dsa <domain> encounter <a> <b> [--frac F] [--runs N] [--seed N] [--effort E]
//! dsa <domain> pra [<p1> <p2> ... | --all] [--seed N] [--sample K] [--effort E] [--threads N]
//! dsa <domain> attack list               list the registered attack models
//! dsa <domain> attack run <model> <defender> [--budget B] [--runs N] [--seed N] [--effort E]
//!                                            [--param name=v1,v2,...]   (e.g. k=2,4,8)
//! dsa <domain> evolve matrix [<p>...] [--runs N] [--seed N] [--effort E] [--threads N]
//! dsa <domain> evolve run    [<p>...] [--steps S] [--runs N] [--seed N] [--effort E] [--threads N]
//! dsa <domain> evolve ess    [<p>...] [--runs N] [--seed N] [--effort E] [--threads N]
//! dsa <domain> attribute fit          [--response pra|attack|evolution] [--scale S] [--seed N]
//!                                     [--threads N] [--out DIR]
//! dsa <domain> attribute interactions [--top N] [+ the fit flags]
//! dsa <domain> attribute navigate <p> [--improve AXIS] [--guard AXIS|none] [--tolerance T]
//!                                     [--top N] [+ the fit flags]
//! dsa <domain> search [--seed N] [--budget N] [--restarts R] [--effort E]
//! dsa bt <kind-a> [kind-b] [--frac F] [--runs N]   (piece-level BitTorrent, swarm-only)
//! dsa obs report [file] [--out DIR]      render an exported obs-*.csv (default: newest)
//! dsa obs list [--out DIR]               list the exported observability snapshots
//! dsa obs runs [--out DIR] [--last N]    list the run journal (results/journal.jsonl)
//! dsa obs trace [--out FILE] [--domain D] [--scale S] [--seed N] [--threads N]
//!                                        run a traced PRA workload and export it as
//!                                        Chrome Trace Event JSON (Perfetto-loadable)
//! dsa obs diff <run-a> <run-b> [--out DIR] [--threshold PCT]
//!                                        per-span/per-metric deltas between two journal
//!                                        records (run ids, or -1/-2/... from the end)
//! dsa obs regress [--out DIR] [--journal FILE] [--threshold PCT] [--window N]
//!                 [--floor NS] [--baselines FILE]
//!                                        perf gate: latest journal entry vs its rolling
//!                                        window + bench ceilings; exits non-zero on fail
//! dsa obs serve [--addr A] [--out DIR] [+ the regress flags]
//!                                        resident query server over the journal:
//!                                        /runs /runs/<id> /diff/<a>/<b> /regress
//!                                        /metrics /snapshot /healthz
//! dsa obs top [--addr A] [--interval SECS] [--once]
//!                                        polling terminal dashboard over a live
//!                                        /snapshot endpoint (--obs-listen or serve)
//! dsa obs flame [run | --live] [--out FILE] [--dir DIR]
//!               [--domain D] [--scale S] [--seed N] [--threads N]
//!                                        folded-stacks export (inferno / speedscope /
//!                                        flamegraph.pl): a journal record's spans by
//!                                        self time, or (--live) a freshly traced PRA
//!                                        workload with real per-thread stacks — and,
//!                                        with the global --alloc, weighted by self
//!                                        allocation counts instead of nanoseconds
//! dsa obs gc [--out DIR] [--keep N] [--dry-run]
//!                                        compact the journal to its newest N records
//!                                        (atomic rewrite; refuses on parse errors;
//!                                        --dry-run previews kept/dropped run ids)
//! dsa obs lint <file> [--monotone FILE]  validate a saved /metrics body as Prometheus
//!                                        text exposition; with --monotone, check every
//!                                        counter series grew vs an earlier scrape
//! ```
//!
//! `obs runs` and `obs diff` also take `--json`, emitting exactly the
//! documents the resident server serves on `/runs` and `/diff/<a>/<b>`.
//!
//! The global `--metrics` switch turns the [`dsa_obs`] registries on for
//! any command and `--trace` additionally records spans; both print an
//! observability epilogue after the command's own output **and append a
//! provenance record to `<out>/journal.jsonl`** (see `dsa obs runs`).
//! `--metrics` also samples process RSS (background thread + a final
//! boundary reading) and the engines' arena footprints; the global
//! `--alloc` switch (implies `--metrics`) additionally turns on the
//! runtime counting allocator, adding `mem.alloc.*` totals and the
//! per-run `mem.run_allocs.*` histograms.
//! The global `--obs-listen <addr>` switch (implies `--metrics`) serves
//! the live registry over HTTP while the command runs: `GET /metrics`
//! (Prometheus text exposition) and `GET /snapshot` (JSON), scrapeable
//! mid-run — see the bench README's "Live observability" section.
//!
//! Domains: `swarm` (3270 protocols), `gossip` (108), `rep` (288).
//! A bare command (`dsa protocols ...`) defaults to the swarm domain.
//! Attack models (`dsa-attacks`): sybil, collusion, whitewash, adaptive —
//! all parameterized adversaries that work on every domain.
//! `evolve` (`dsa-evolution`) runs population dynamics over a candidate
//! set (default: the domain's presets + canonical attackers): the
//! empirical payoff cross-table, the replicator trajectory from the
//! uniform mixture, and the ESS / basin / fixation classification.
//!
//! Presets: swarm has bittorrent, birds, loyal, sorts, random,
//! freerider; gossip has random-push, reciprocal, lazy, silent; rep has
//! baseline, tft, bartercast, eigentrust, elitist, prober, freerider,
//! whitewasher.
//! BT kinds: bittorrent, birds, loyal, sorts, random.

use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::experiment::mixed_runs;
use dsa_core::domain::{DynDomain, Effort};
use dsa_core::pra::PraConfig;
use dsa_core::tournament::OpponentSampling;
use dsa_stats::ci::ConfidenceInterval;
use dsa_workloads::seeds::SeedSeq;
use std::process::ExitCode;

// The runtime counting allocator behind --alloc. Under the count-allocs
// test feature the dsa_bench library installs its own (unconditional)
// delegating allocator, so gate this one off — a process gets exactly
// one #[global_allocator].
#[cfg(not(feature = "count-allocs"))]
#[global_allocator]
static GLOBAL_ALLOC: dsa_obs::alloc::CountingAlloc = dsa_obs::alloc::CountingAlloc;

/// The generic per-domain subcommands.
const DOMAIN_COMMANDS: [&str; 9] = [
    "protocols",
    "describe",
    "simulate",
    "encounter",
    "pra",
    "attack",
    "evolve",
    "attribute",
    "search",
];

fn main() -> ExitCode {
    dsa_bench::register_domains();
    dsa_attacks::register_builtin();
    // Sample the clock once at startup; everything downstream (CSV
    // stamps, journal records) receives this value instead of reading
    // the clock itself.
    let ts_ms = unix_ms();
    let t0 = std::time::Instant::now();
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = raw_args.clone();
    // `--trace`/`--metrics` are global switches: strip them before any
    // command-level flag validation sees them.
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    let alloc = args.iter().any(|a| a == "--alloc");
    args.retain(|a| a != "--trace" && a != "--metrics" && a != "--alloc");
    // `--obs-listen <addr>` is also global: it consumes a value, so it
    // is stripped as a pair.
    let obs_listen = match args.iter().position(|a| a == "--obs-listen") {
        Some(i) => {
            let Some(addr) = args.get(i + 1).cloned() else {
                eprintln!("error: --obs-listen needs an address (e.g. 127.0.0.1:9464)");
                return ExitCode::FAILURE;
            };
            args.drain(i..i + 2);
            Some(addr)
        }
        None => None,
    };
    if alloc {
        // Counting without a registry to land in would be invisible;
        // --alloc implies --metrics.
        dsa_obs::alloc::enable();
    }
    if trace {
        dsa_obs::enable_trace();
    } else if metrics || obs_listen.is_some() || alloc {
        // An exposition endpoint over a disabled registry would scrape
        // empty forever; --obs-listen implies --metrics.
        dsa_obs::enable_metrics();
    }
    if dsa_obs::metrics_enabled() {
        // Background RSS sampling + armed passive hooks: live scrapes
        // and `obs top` see mem.rss_bytes move during the run.
        dsa_obs::mem::spawn_sampler(dsa_obs::mem::SAMPLER_INTERVAL);
    }
    if let Some(addr) = &obs_listen {
        match dsa_obs::serve::spawn(addr, dsa_obs::serve::Mode::Live) {
            Ok(bound) => eprintln!("obs: serving /metrics /snapshot /healthz on http://{bound}/"),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = match args.first().map(String::as_str) {
        Some("bt") => cmd_bt(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{}", help());
            return ExitCode::SUCCESS;
        }
        Some(name) => {
            if let Some(domain) = dsa_core::domain::lookup(name) {
                dispatch(&*domain, &args[1..])
            } else if DOMAIN_COMMANDS.contains(&name) {
                // Bare commands default to the paper's own domain.
                match dsa_core::domain::lookup("swarm") {
                    Some(domain) => dispatch(&*domain, &args),
                    None => Err("swarm domain not registered".into()),
                }
            } else {
                Err(format!("unknown domain or command '{name}' (try --help)"))
            }
        }
    };
    if trace || metrics || alloc || obs_listen.is_some() {
        // Final memory boundary: one last RSS reading, then fold the
        // allocation tallies (no-op without --alloc) into the snapshot
        // the epilogue and journal render from.
        dsa_obs::mem::sample();
        let mut snap = dsa_obs::snapshot();
        dsa_obs::alloc::publish_into(&mut snap);
        if !snap.is_empty() {
            println!("==== observability ====");
            print!("{}", snap.render());
            // Append the run's provenance record to the journal — but
            // not for `obs` meta-commands: they read or export the
            // journal rather than run a workload, and their `--out` is
            // a file (trace.json, flame.folded), not a results dir.
            if args.first().map(String::as_str) != Some("obs") {
                let wall_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
                let meta = run_meta_from_args(&raw_args, "dsa", ts_ms);
                let out_dir = journal_dir(&raw_args);
                let record = dsa_obs::JournalRecord::from_snapshot(meta, wall_ms, &snap);
                match dsa_obs::journal::append(
                    &out_dir,
                    &record,
                    dsa_obs::journal::DEFAULT_MAX_BYTES,
                ) {
                    Ok(path) => println!("journaled {} to {}", record.meta.run_id, path.display()),
                    Err(msg) => eprintln!("journal append failed: {msg}"),
                }
            }
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Unix milliseconds — sampled exactly once, in `main`.
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The value following `--flag` in a raw argument list, if any.
fn arg_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Where this invocation's journal lives: the `--out` directory when one
/// was given, else `results`.
fn journal_dir(args: &[String]) -> std::path::PathBuf {
    std::path::PathBuf::from(arg_value(args, "--out").unwrap_or("results"))
}

/// Builds the journal metadata for this invocation out of the raw
/// argument list: best-effort extraction of the workload coordinates
/// (domain, scale/effort, seed, threads) without re-running any
/// command-specific parser.
fn run_meta_from_args(args: &[String], binary: &str, ts_ms: u64) -> dsa_obs::RunMeta {
    let domain = args
        .first()
        .filter(|name| dsa_core::domain::lookup(name).is_some())
        .cloned();
    let scale = arg_value(args, "--scale")
        .or_else(|| arg_value(args, "--effort"))
        .map(str::to_string);
    let seed = arg_value(args, "--seed").and_then(|v| v.parse().ok());
    let requested = arg_value(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    // The journaled command drops the observability switches
    // (`--metrics`, `--trace`, `--alloc`, `--obs-listen <addr>`): they
    // change what is recorded, not what runs, and diff/regress group
    // comparable runs by command string.
    let mut command: Vec<&str> = Vec::new();
    let mut skip_value = false;
    for a in args.iter().map(String::as_str) {
        if skip_value {
            skip_value = false;
        } else if a == "--obs-listen" {
            skip_value = true;
        } else if a != "--metrics" && a != "--trace" && a != "--alloc" {
            command.push(a);
        }
    }
    dsa_obs::RunMeta {
        run_id: format!("{binary}-{ts_ms}-{}", std::process::id()),
        binary: binary.to_string(),
        command: format!("{binary} {}", command.join(" ")),
        timestamp_ms: ts_ms,
        scale,
        domain,
        seed,
        threads: dsa_core::parallel::effective_threads(requested, usize::MAX),
    }
}

fn help() -> String {
    let domains: Vec<String> = dsa_core::domain::registry()
        .iter()
        .map(|d| format!("{} ({} protocols)", d.name(), d.size()))
        .collect();
    let attacks: Vec<&str> = dsa_attacks::registry().iter().map(|m| m.name()).collect();
    format!(
        "dsa — Design Space Analysis toolkit\n\
         usage: dsa <domain> {{protocols|describe|simulate|encounter|pra|attack|evolve|attribute|search}} [...]\n\
         \u{20}      dsa bt <kind-a> [kind-b] [--frac F] [--runs N]\n\
         \u{20}      dsa obs {{report [file]|list|runs|trace|diff <a> <b>|regress|serve|top|flame|gc|lint}} [--out DIR]\n\
         domains: {}\n\
         attacks: {} (dsa <domain> attack {{list|run}})\n\
         (bare commands default to the swarm domain; global --metrics/--trace\n\
         \u{20}record counters and spans for any command, --alloc adds runtime\n\
         \u{20}allocation counting, and --obs-listen ADDR serves the live registry\n\
         \u{20}over HTTP; see crate docs for flags)",
        domains.join(", "),
        attacks.join(", ")
    )
}

/// Routes one generic subcommand to its implementation.
fn dispatch(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("protocols") => cmd_protocols(domain, &args[1..]),
        Some("describe") => cmd_describe(domain, &args[1..]),
        Some("simulate") => cmd_simulate(domain, &args[1..]),
        Some("encounter") => cmd_encounter(domain, &args[1..]),
        Some("pra") => cmd_pra(domain, &args[1..]),
        Some("attack") => cmd_attack(domain, &args[1..]),
        Some("evolve") => cmd_evolve(domain, &args[1..]),
        Some("attribute") => cmd_attribute(domain, &args[1..]),
        Some("search") => cmd_search(domain, &args[1..]),
        Some(other) => Err(format!(
            "unknown {} command '{other}' (expected one of: {})",
            domain.name(),
            DOMAIN_COMMANDS.join(", ")
        )),
        None => Err(format!(
            "{} needs a subcommand: {}",
            domain.name(),
            DOMAIN_COMMANDS.join(", ")
        )),
    }
}

/// Parsed `--flag value` pairs.
type Flags = Vec<(String, String)>;

/// Pulls `--flag value` pairs out of an argument list; returns
/// (positional, lookup).
fn split_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.iter().find(|(n, _)| n == name) {
        None => Ok(default),
        Some((_, v)) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
    }
}

/// Rejects flags outside a command's accepted set. Silently ignoring a
/// mistyped or unsupported flag would run a different configuration than
/// the user asked for and still exit 0.
fn check_flags(flags: &Flags, allowed: &[&str]) -> Result<(), String> {
    for (name, _) in flags {
        if !allowed.contains(&name.as_str()) {
            let accepted: Vec<String> = allowed.iter().map(|f| format!("--{f}")).collect();
            return Err(format!(
                "unknown flag --{name} (accepted: {})",
                accepted.join(", ")
            ));
        }
    }
    Ok(())
}

fn effort_flag(flags: &Flags) -> Result<Effort, String> {
    let name: String = flag(flags, "effort", "smoke".to_string())?;
    Effort::by_name(&name).ok_or_else(|| format!("unknown --effort '{name}' (smoke|lab|paper)"))
}

fn churn_flag(domain: &dyn DynDomain, flags: &Flags) -> Result<f64, String> {
    let churn = flag(flags, "churn", 0.0f64)?;
    if churn > 0.0 && !domain.supports_churn() {
        return Err(format!(
            "the {} domain's simulator has no churn model",
            domain.name()
        ));
    }
    Ok(churn)
}

fn cmd_protocols(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let filter = args.first().cloned().unwrap_or_default();
    let mut count = 0;
    for (i, code) in domain.codes().iter().enumerate() {
        if code.contains(&filter) {
            println!("{i:>5}  {code}");
            count += 1;
        }
    }
    eprintln!("({count} of {} {} protocols)", domain.size(), domain.name());
    Ok(())
}

fn cmd_describe(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let token = args.first().ok_or("describe needs a protocol")?;
    let index = domain.parse(token)?;
    println!("domain     : {}", domain.name());
    println!("index      : {index}");
    println!("code       : {}", domain.code(index));
    for part in domain.describe(index).split(", ") {
        match part.split_once('=') {
            Some((dim, level)) => println!("{dim:<11}: {level}"),
            None => println!("{part}"),
        }
    }
    if let Some((name, _)) = domain.presets().iter().find(|(_, i)| *i == index) {
        println!("preset     : {name}");
    }
    Ok(())
}

fn cmd_simulate(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    check_flags(&flags, &["seed", "churn", "effort"])?;
    let token = pos.first().ok_or("simulate needs a protocol")?;
    let index = domain.parse(token)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let effort = effort_flag(&flags)?;
    let churn = churn_flag(domain, &flags)?;
    print!("{}", domain.simulate_report(index, effort, churn, seed));
    Ok(())
}

fn cmd_encounter(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    check_flags(&flags, &["frac", "runs", "seed", "effort"])?;
    if pos.len() < 2 {
        return Err("encounter needs two protocols".into());
    }
    let a = domain.parse(&pos[0])?;
    let b = domain.parse(&pos[1])?;
    let frac = flag(&flags, "frac", 0.5f64)?;
    let runs = flag(&flags, "runs", 5usize)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let effort = effort_flag(&flags)?;
    let mut wins = 0;
    let mut ua = Vec::new();
    let mut ub = Vec::new();
    for r in 0..runs {
        let (x, y) = domain.run_encounter(a, b, frac, effort, seed.wrapping_add(r as u64));
        if x > y {
            wins += 1;
        }
        ua.push(x);
        ub.push(y);
    }
    println!(
        "{} ({:.0}% of population) vs {}",
        domain.code(a),
        frac * 100.0,
        domain.code(b)
    );
    println!("  group A mean utility: {}", ConfidenceInterval::ci95(&ua));
    println!("  group B mean utility: {}", ConfidenceInterval::ci95(&ub));
    println!("  A wins {wins}/{runs} runs");
    Ok(())
}

fn cmd_pra(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    // `--all` is a bare switch; strip it before the `--flag value` parse
    // so it does not swallow the next token.
    let explicit_all = args.iter().any(|a| a == "--all");
    let args: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--all")
        .cloned()
        .collect();
    let (pos, flags) = split_flags(&args)?;
    check_flags(&flags, &["seed", "sample", "effort", "threads"])?;
    let seed = flag(&flags, "seed", 0x5EEDu64)?;
    let sample = flag(&flags, "sample", 20usize)?;
    let threads = flag(&flags, "threads", 0usize)?;
    let effort = effort_flag(&flags)?;
    let all = explicit_all || pos.is_empty();
    let indices: Vec<usize> = if all {
        (0..domain.size()).collect()
    } else {
        pos.iter()
            .map(|t| domain.parse(t))
            .collect::<Result<_, _>>()?
    };
    if indices.len() < 2 {
        return Err("pra needs at least two protocols (or none for the full space)".into());
    }
    let config = PraConfig {
        performance_runs: 3,
        encounter_runs: 2,
        sampling: if all {
            OpponentSampling::Sampled(sample)
        } else {
            OpponentSampling::Exhaustive
        },
        threads,
        seed,
        ..PraConfig::default()
    };
    let results = domain.quantify(&indices, effort, &config);
    let codes: Vec<String> = indices.iter().map(|&i| domain.code(i)).collect();
    let width = codes.iter().map(String::len).max().unwrap_or(8).max(8);
    println!(
        "{:<width$} {:>11} {:>10} {:>14}",
        "protocol", "Performance", "Robustness", "Aggressiveness"
    );
    // For the full space print the 10 strongest by robustness; an ad-hoc
    // set prints in the order given.
    let order: Vec<usize> = if all {
        results
            .ranked_by(|p| p.robustness)
            .into_iter()
            .take(10)
            .collect()
    } else {
        (0..indices.len()).collect()
    };
    for i in order {
        let pt = results.point(i);
        println!(
            "{:<width$} {:>11.3} {:>10.3} {:>14.3}",
            codes[i], pt.performance, pt.robustness, pt.aggressiveness
        );
    }
    if all {
        println!("(top 10 of {} by robustness)", indices.len());
    }
    Ok(())
}

// ---- the adversary subsystem (dsa-attacks) --------------------------------

fn cmd_attack(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for model in dsa_attacks::registry() {
                println!("{:<11} {}", model.name(), model.describe());
            }
            println!(
                "(run one with: dsa {} attack run <model> <defender>)",
                domain.name()
            );
            Ok(())
        }
        Some("run") => cmd_attack_run(domain, &args[1..]),
        Some(other) => Err(format!(
            "unknown attack command '{other}' (expected: list, run)"
        )),
        None => Err("attack needs a subcommand: list, run".into()),
    }
}

fn cmd_attack_run(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    check_flags(&flags, &["budget", "runs", "seed", "effort", "param"])?;
    let model_name = pos
        .first()
        .ok_or("attack run needs a model (see 'attack list')")?;
    let model = dsa_attacks::lookup(model_name)
        .ok_or_else(|| format!("unknown attack model '{model_name}' (see 'attack list')"))?;
    let token = pos.get(1).ok_or("attack run needs a defender protocol")?;
    let defender = domain.parse(token)?;
    let runs = flag(&flags, "runs", 3usize)?.max(1);
    let seed = flag(&flags, "seed", 1u64)?;
    let effort = effort_flag(&flags)?;
    let budgets: Vec<f64> = if flags.iter().any(|(n, _)| n == "budget") {
        let budget = flag(&flags, "budget", 0.0f64)?;
        if budget <= 0.0 || budget >= 1.0 {
            return Err(format!("--budget must be in (0,1), got {budget}"));
        }
        vec![budget]
    } else {
        dsa_attacks::DEFAULT_BUDGETS.to_vec()
    };
    // `--param k=2,4,8` sweeps one model parameter alongside the budget
    // axis: one parameterized model variant per value (each with its own
    // cache fingerprint — the attack-model-depth sweep axis).
    let variants: Vec<(String, std::sync::Arc<dyn dsa_attacks::AttackModel>)> =
        if let Some((_, spec)) = flags.iter().find(|(n, _)| n == "param") {
            let (param, values) = dsa_attacks::parse_param_spec(spec)?;
            values
                .iter()
                .map(|&v| {
                    dsa_attacks::parameterized(model.name(), &param, v)
                        .map(|m| (format!("{param}={v}"), m))
                })
                .collect::<Result<_, _>>()?
        } else {
            vec![(String::new(), model)]
        };
    let root = SeedSeq::new(seed);
    for (label, model) in &variants {
        println!(
            "{} vs {}{}: {}",
            domain.code(defender),
            model.name(),
            if label.is_empty() {
                String::new()
            } else {
                format!(" [{label}]")
            },
            model.describe()
        );
        println!(
            "{:>7} {:>14} {:>14} {:>10}",
            "budget", "defender util", "adversary util", "survives"
        );
        for (bi, &b) in budgets.iter().enumerate() {
            let ctx = dsa_attacks::AttackContext {
                domain,
                effort,
                budget: b,
            };
            // Seeds derive from the budget position only, so every
            // parameter variant faces the same worlds and columns are
            // comparable across the parameter axis.
            let node = root.child(bi as u64);
            let (mut def_acc, mut adv_acc, mut wins) = (0.0, 0.0, 0usize);
            for r in 0..runs {
                let (def, adv) = model.encounter(&ctx, defender, node.child(r as u64).seed());
                def_acc += def;
                adv_acc += adv;
                if def > adv {
                    wins += 1;
                }
            }
            println!(
                "{b:>7.2} {:>14.3} {:>14.3} {:>7}/{runs}",
                def_acc / runs as f64,
                adv_acc / runs as f64,
                wins
            );
        }
    }
    Ok(())
}

// ---- population dynamics (dsa-evolution) ----------------------------------

fn cmd_evolve(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("matrix") => cmd_evolve_matrix(domain, &args[1..]),
        Some("run") => cmd_evolve_run(domain, &args[1..]),
        Some("ess") => cmd_evolve_ess(domain, &args[1..]),
        Some(other) => Err(format!(
            "unknown evolve command '{other}' (expected: matrix, run, ess)"
        )),
        None => Err("evolve needs a subcommand: matrix, run, ess".into()),
    }
}

/// Parses the shared evolve arguments: candidate tokens (default: the
/// domain's presets + canonical attackers) and the dynamics flags.
fn evolve_setup(
    domain: &dyn DynDomain,
    args: &[String],
    extra_flags: &[&str],
) -> Result<(Vec<usize>, dsa_evolution::EvoConfig, Effort, Flags), String> {
    let (pos, flags) = split_flags(args)?;
    let mut allowed = vec!["runs", "seed", "effort", "threads"];
    allowed.extend_from_slice(extra_flags);
    check_flags(&flags, &allowed)?;
    let candidates = if pos.is_empty() {
        dsa_evolution::default_candidates(domain)
    } else {
        let mut out: Vec<usize> = Vec::new();
        for token in &pos {
            let index = domain.parse(token)?;
            if !out.contains(&index) {
                out.push(index);
            }
        }
        out
    };
    if candidates.len() < 2 {
        return Err("evolve needs at least two distinct candidates".into());
    }
    let cfg = dsa_evolution::EvoConfig {
        encounter_runs: flag(&flags, "runs", 2usize)?.max(1),
        threads: flag(&flags, "threads", 0usize)?,
        seed: flag(&flags, "seed", 0x5EEDu64)?,
        ..dsa_evolution::EvoConfig::default()
    };
    let effort = effort_flag(&flags)?;
    Ok((candidates, cfg, effort, flags))
}

fn cmd_evolve_matrix(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (candidates, cfg, effort, _) = evolve_setup(domain, args, &[])?;
    let m = dsa_evolution::empirical_matrix(domain, &candidates, effort, &cfg);
    println!(
        "empirical payoff matrix over {} {} candidates (population {}, {} runs/cell)",
        m.len(),
        domain.name(),
        m.population,
        cfg.encounter_runs
    );
    let name_w = m.names.iter().map(String::len).max().unwrap_or(8);
    print!("{:<name_w$} ", "");
    for j in 0..m.len() {
        print!("{j:>9} ");
    }
    println!();
    for (i, row) in m.payoff.iter().enumerate() {
        print!("{:<name_w$} ", m.names[i]);
        for v in row {
            print!("{v:>9.3} ");
        }
        println!();
    }
    println!("{}", dsa_stats::ascii::matrix_heat(&m.payoff, &m.names));
    Ok(())
}

fn cmd_evolve_run(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (candidates, cfg, effort, flags) = evolve_setup(domain, args, &["steps"])?;
    let steps = flag(&flags, "steps", 60usize)?.max(1);
    let m = dsa_evolution::empirical_matrix(domain, &candidates, effort, &cfg);
    let k = m.len();
    let uniform = vec![1.0 / k as f64; k];
    let trajectory = dsa_gametheory::evolution::replicator_trajectory(&m.payoff, &uniform, steps);
    println!(
        "replicator dynamics from the uniform mixture over {} {} candidates",
        k,
        domain.name()
    );
    let name_w = m.names.iter().map(String::len).max().unwrap_or(8);
    print!("{:>6} ", "step");
    for name in &m.names {
        print!("{name:>name_w$} ");
    }
    println!();
    // Print a logarithmic-ish selection of steps: enough to see the flow
    // without a wall of rows.
    let mut shown: Vec<usize> = vec![0, 1, 2, 5, 10, 20, 40, steps]
        .into_iter()
        .filter(|&s| s <= steps)
        .collect();
    shown.dedup();
    for &s in &shown {
        print!("{s:>6} ");
        for share in &trajectory[s] {
            print!("{share:>name_w$.3} ");
        }
        println!();
    }
    let last = trajectory.last().expect("non-empty trajectory");
    let analysis = dsa_evolution::analyze(&m, &cfg);
    println!(
        "welfare: uniform {:.3} -> step {steps} {:.3} (optimum {:.3} at {})",
        dsa_evolution::analysis::welfare(&m.payoff, &uniform),
        dsa_evolution::analysis::welfare(&m.payoff, last),
        analysis.max_welfare,
        m.names[analysis.optimum]
    );
    println!(
        "evolutionary PoA {:.3} (worst-case {:.3})",
        analysis.poa, analysis.poa_worst
    );
    Ok(())
}

fn cmd_evolve_ess(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (candidates, cfg, effort, _) = evolve_setup(domain, args, &[])?;
    let m = dsa_evolution::empirical_matrix(domain, &candidates, effort, &cfg);
    let analysis = dsa_evolution::analyze(&m, &cfg);
    println!(
        "ESS classification over {} {} candidates ({:.0}% mutants, {} basin samples, population {})",
        m.len(),
        domain.name(),
        cfg.mutant_share * 100.0,
        cfg.basin_samples,
        m.population
    );
    print!("{}", analysis.candidate_table(&m));
    println!("{}", analysis.summary_line(&m));
    Ok(())
}

// ---- variance attribution (dsa-attribution) --------------------------------

fn cmd_attribute(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("fit") => cmd_attribute_fit(domain, &args[1..]),
        Some("interactions") => cmd_attribute_interactions(domain, &args[1..]),
        Some("navigate") => cmd_attribute_navigate(domain, &args[1..]),
        Some(other) => Err(format!(
            "unknown attribute command '{other}' (expected: fit, interactions, navigate)"
        )),
        None => Err("attribute needs a subcommand: fit, interactions, navigate".into()),
    }
}

/// Parses the attribution flags shared by the three subcommands: the
/// scale (which selects both simulator fidelity and the cache files),
/// the response surface, seed/threads overrides and the cache directory.
fn attribute_setup(
    flags: &Flags,
) -> Result<
    (
        dsa_bench::Scale,
        dsa_attribution::ResponseKind,
        std::path::PathBuf,
    ),
    String,
> {
    let scale_name: String = flag(flags, "scale", "smoke".to_string())?;
    let mut scale = dsa_bench::Scale::by_name(&scale_name)
        .ok_or_else(|| format!("unknown --scale '{scale_name}' (smoke|lab|paper)"))?;
    scale.pra.seed = flag(flags, "seed", scale.pra.seed)?;
    scale.pra.threads = flag(flags, "threads", scale.pra.threads)?;
    let response_name: String = flag(flags, "response", "pra".to_string())?;
    let response = dsa_attribution::ResponseKind::by_name(&response_name)
        .ok_or_else(|| format!("unknown --response '{response_name}' (pra|attack|evolution)"))?;
    let out = std::path::PathBuf::from(flag(flags, "out", "results".to_string())?);
    Ok((scale, response, out))
}

const ATTRIBUTE_FLAGS: [&str; 5] = ["response", "scale", "seed", "threads", "out"];

fn cmd_attribute_fit(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if let Some(stray) = pos.first() {
        return Err(format!(
            "attribute fit takes no positional argument '{stray}'"
        ));
    }
    check_flags(&flags, &ATTRIBUTE_FLAGS)?;
    let (scale, response, out) = attribute_setup(&flags)?;
    let surface = dsa_bench::attribfig::build_surface(domain, response, &scale, &out)?;
    let table =
        dsa_attribution::AttribTable::load_or_compute(domain, &surface, scale.pra.threads, &out)?;
    println!(
        "variance attribution of the {} {} surface ({} rows, scale {})",
        domain.name(),
        surface.response,
        surface.rows.len(),
        scale.name
    );
    print!("{}", dsa_bench::attribfig::render_table(&table));
    println!(
        "(table {}: {})",
        if table.from_cache {
            "loaded from cache"
        } else {
            "computed and cached"
        },
        table.path(&out).display()
    );
    Ok(())
}

fn cmd_attribute_interactions(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if let Some(stray) = pos.first() {
        return Err(format!(
            "attribute interactions takes no positional argument '{stray}'"
        ));
    }
    let mut allowed = ATTRIBUTE_FLAGS.to_vec();
    allowed.push("top");
    check_flags(&flags, &allowed)?;
    let top = flag(&flags, "top", 5usize)?.max(1);
    let (scale, response, out) = attribute_setup(&flags)?;
    let surface = dsa_bench::attribfig::build_surface(domain, response, &scale, &out)?;
    let dm = dsa_attribution::DesignMatrix::build(domain.space(), &surface.rows, scale.pra.threads);
    println!(
        "pairwise interaction scan of the {} {} surface (scale {}, ranked by incremental R²)",
        domain.name(),
        surface.response,
        scale.name
    );
    for (axis, y) in &surface.axes {
        let scan = dsa_attribution::interaction_scan(&dm, y);
        if scan.is_empty() {
            println!("{axis}: fewer than two varying dimensions — nothing to scan");
            continue;
        }
        println!("{axis}:");
        for i in scan.iter().take(top) {
            if i.delta_r2.is_finite() {
                println!(
                    "  {:<28} ΔR² = {:.4}  F = {:>8.2}  p {} ({} columns)",
                    format!("{} × {}", i.dim_a, i.dim_b),
                    i.delta_r2,
                    i.f_stat,
                    if i.p_value < 0.001 {
                        "< 0.001".to_string()
                    } else {
                        format!("= {:.3}", i.p_value)
                    },
                    i.columns
                );
            } else {
                println!(
                    "  {:<28} (augmented model infeasible on this surface)",
                    format!("{} × {}", i.dim_a, i.dim_b)
                );
            }
        }
    }
    Ok(())
}

fn cmd_attribute_navigate(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    let token = pos
        .first()
        .ok_or("attribute navigate needs a starting protocol")?;
    let start = domain.parse(token)?;
    let mut allowed = ATTRIBUTE_FLAGS.to_vec();
    allowed.extend_from_slice(&["improve", "guard", "tolerance", "top"]);
    check_flags(&flags, &allowed)?;
    let (scale, response, out) = attribute_setup(&flags)?;
    let tolerance = flag(&flags, "tolerance", 0.05f64)?;
    let top = flag(&flags, "top", 5usize)?.max(1);
    let surface = dsa_bench::attribfig::build_surface(domain, response, &scale, &out)?;
    let axis_names: Vec<&str> = surface.axes.iter().map(|(n, _)| n.as_str()).collect();
    let improve_name: String = flag(&flags, "improve", axis_names[0].to_string())?;
    let guard_name: String = flag(
        &flags,
        "guard",
        axis_names.get(1).map_or("none", |n| n).to_string(),
    )?;
    let axis_pos = |name: &str| -> Result<usize, String> {
        axis_names
            .iter()
            .position(|n| *n == name)
            .ok_or_else(|| format!("unknown axis '{name}' (this surface has: {axis_names:?})"))
    };
    let improve_at = axis_pos(&improve_name)?;
    let guard_at = if guard_name == "none" {
        None
    } else {
        Some(axis_pos(&guard_name)?)
    };
    let dm = dsa_attribution::DesignMatrix::build(domain.space(), &surface.rows, scale.pra.threads);
    let axes = dsa_attribution::attribute_surface(&dm, &surface);
    let suggestions = dsa_attribution::navigate(
        domain.space(),
        &dm,
        &axes[improve_at],
        guard_at.map(|g| &axes[g]),
        &surface.axes[improve_at].1,
        guard_at.map(|g| surface.axes[g].1.as_slice()),
        start,
        tolerance,
        top,
    );
    println!(
        "dimension-flip navigator: improve {} of {} {}{}",
        improve_name,
        domain.code(start),
        match guard_at {
            Some(_) => format!("guarding {guard_name} (tolerance {tolerance})"),
            None => "unguarded".to_string(),
        },
        if suggestions.is_empty() {
            " — no single flip is predicted to help"
        } else {
            ""
        }
    );
    if axes[improve_at].fit.is_none() {
        println!(
            "(the {improve_name} axis has no fitted model on this surface — n = {} rows are \
             too few, or the design is aliased)",
            surface.rows.len()
        );
        return Ok(());
    }
    for f in &suggestions {
        println!(
            "  flip {} {}→{} (index {}): predicted Δ{} {:+.3} / measured {:+.3}; \
             guard Δ {:+.3} / measured {:+.3} {}",
            f.dim,
            f.from_level,
            f.to_level,
            f.index,
            improve_name,
            f.predicted_improve,
            f.actual_improve,
            f.predicted_guard,
            f.actual_guard,
            if f.verified(tolerance) {
                "[verified]"
            } else {
                "[NOT confirmed by the sweep]"
            }
        );
    }
    Ok(())
}

// ---- heuristic design-space exploration (dsa <domain> search) --------------

fn cmd_search(domain: &dyn DynDomain, args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if let Some(stray) = pos.first() {
        return Err(format!("search takes no positional argument '{stray}'"));
    }
    check_flags(&flags, &["seed", "budget", "restarts", "effort"])?;
    let seed = flag(&flags, "seed", 0x5EEDu64)?;
    let budget = flag(&flags, "budget", 400usize)?;
    let restarts = flag(&flags, "restarts", 4usize)?.max(1);
    let effort = effort_flag(&flags)?;
    // Objective: homogeneous performance at one probe seed — the cheap
    // proxy the §7 future-work demo uses. The probe seed derives from the
    // master seed so `--seed` steers exploration and evaluation together.
    let probe = SeedSeq::new(seed).child(0xF).seed();
    let objective = |idx: usize| domain.run_homogeneous(idx, effort, probe);
    let hc = dsa_core::search::hill_climb(domain.space(), objective, restarts, budget, seed);
    let ev = dsa_core::search::evolve(domain.space(), objective, 6, 12, 20, 0.3, budget, seed);
    println!(
        "heuristic exploration of the {} space ({} protocols, budget {budget}, seed {seed})",
        domain.name(),
        domain.size()
    );
    for (label, outcome) in [("hill-climb", &hc), ("evolution", &ev)] {
        println!(
            "{label:<11}: best {} (perf proxy {:.3}) in {} evaluations",
            domain.code(outcome.best_index),
            outcome.best_value,
            outcome.evaluations
        );
    }
    Ok(())
}

// ---- exported observability snapshots (dsa-obs) ---------------------------

fn cmd_obs(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("report") => cmd_obs_report(&args[1..]),
        Some("list") => cmd_obs_list(&args[1..]),
        Some("runs") => cmd_obs_runs(&args[1..]),
        Some("trace") => cmd_obs_trace(&args[1..]),
        Some("diff") => cmd_obs_diff(&args[1..]),
        Some("regress") => cmd_obs_regress(&args[1..]),
        Some("serve") => cmd_obs_serve(&args[1..]),
        Some("top") => cmd_obs_top(&args[1..]),
        Some("flame") => cmd_obs_flame(&args[1..]),
        Some("gc") => cmd_obs_gc(&args[1..]),
        Some("lint") => cmd_obs_lint(&args[1..]),
        Some(other) => Err(format!(
            "unknown obs command '{other}' (expected: report, list, runs, trace, diff, \
             regress, serve, top, flame, gc, lint)"
        )),
        None => Err(
            "obs needs a subcommand: report, list, runs, trace, diff, regress, serve, top, \
             flame, gc, lint"
                .into(),
        ),
    }
}

/// The `obs-*.csv` exports under `dir`, newest first (ties broken by
/// name, descending, so the order is deterministic).
fn obs_files(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut files: Vec<(std::time::SystemTime, std::path::PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("obs-") || !name.ends_with(".csv") {
                return None;
            }
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            Some((mtime, entry.path()))
        })
        .collect();
    files.sort_by(|a, b| b.cmp(a));
    Ok(files.into_iter().map(|(_, p)| p).collect())
}

fn cmd_obs_report(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    check_flags(&flags, &["out"])?;
    let out: String = flag(&flags, "out", "results".to_string())?;
    let path = match pos.first() {
        Some(p) => std::path::PathBuf::from(p),
        None => obs_files(std::path::Path::new(&out))?
            .into_iter()
            .next()
            .ok_or_else(|| {
                format!(
                    "no obs-*.csv under {out} (export one with --metrics/--trace \
                     or 'experiments profile')"
                )
            })?,
    };
    let (meta, snap) = dsa_obs::read_csv(&path)?;
    println!("observability snapshot ({})", path.display());
    print!("{}", meta.render());
    print!("{}", snap.render());
    Ok(())
}

fn cmd_obs_list(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if let Some(stray) = pos.first() {
        return Err(format!("obs list takes no positional argument '{stray}'"));
    }
    check_flags(&flags, &["out"])?;
    let out: String = flag(&flags, "out", "results".to_string())?;
    let files = obs_files(std::path::Path::new(&out))?;
    if files.is_empty() {
        println!("no obs-*.csv under {out}");
        return Ok(());
    }
    for path in files {
        match dsa_obs::read_csv(&path) {
            Ok((meta, snap)) => println!(
                "{:<40} run={}{}{} ({} counters, {} gauges, {} hists, {} spans)",
                path.display(),
                meta.run,
                meta.scale
                    .as_deref()
                    .map_or_else(String::new, |s| format!(" scale={s}")),
                if meta.threads > 0 {
                    format!(" threads={}", meta.threads)
                } else {
                    String::new()
                },
                snap.counters.len(),
                snap.gauges.len(),
                snap.hists.len(),
                snap.spans.len()
            ),
            Err(msg) => println!("{:<40} (unreadable: {msg})", path.display()),
        }
    }
    Ok(())
}

// ---- the run journal (dsa obs runs/trace/diff/regress) ---------------------

/// Reads the journal under `--out` (default `results`), reporting any
/// skipped (corrupt) lines on stderr.
fn read_journal(out: &str) -> Result<Vec<dsa_obs::JournalRecord>, String> {
    let (records, skipped) = dsa_obs::journal::read_all(std::path::Path::new(out))?;
    if skipped > 0 {
        eprintln!("(skipped {skipped} unparseable journal line(s))");
    }
    Ok(records)
}

/// Strips a bare (valueless) `--switch` from an argument list, returning
/// whether it was present. Must run before [`split_flags`], which would
/// otherwise swallow the next token as the switch's value.
fn take_switch(args: &[String], name: &str) -> (bool, Vec<String>) {
    let present = args.iter().any(|a| a == name);
    let rest = args
        .iter()
        .filter(|a| a.as_str() != name)
        .cloned()
        .collect();
    (present, rest)
}

fn cmd_obs_runs(args: &[String]) -> Result<(), String> {
    let (json, args) = take_switch(args, "--json");
    let (pos, flags) = split_flags(&args)?;
    if let Some(stray) = pos.first() {
        return Err(format!("obs runs takes no positional argument '{stray}'"));
    }
    check_flags(&flags, &["out", "last"])?;
    let out: String = flag(&flags, "out", "results".to_string())?;
    let last = flag(&flags, "last", 10usize)?.max(1);
    if json {
        // Same document the resident server's /runs endpoint emits —
        // unfiltered (--last shapes the human listing only), with any
        // corrupt-line count inline instead of on stderr.
        let (records, skipped) = dsa_obs::journal::read_all(std::path::Path::new(&out))?;
        print!("{}", dsa_obs::serve::runs_json(&records, skipped));
        return Ok(());
    }
    let records = read_journal(&out)?;
    if records.is_empty() {
        println!(
            "no journal records under {out} (runs with --metrics/--trace and \
             'experiments profile' append to {}/{})",
            out,
            dsa_obs::journal::JOURNAL_FILE
        );
        return Ok(());
    }
    let shown = records.len().min(last);
    for r in &records[records.len() - shown..] {
        println!("{}", r.summary_line());
    }
    println!("({shown} of {} journal record(s))", records.len());
    Ok(())
}

fn cmd_obs_trace(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if let Some(stray) = pos.first() {
        return Err(format!("obs trace takes no positional argument '{stray}'"));
    }
    check_flags(&flags, &["out", "domain", "scale", "seed", "threads"])?;
    let out: String = flag(&flags, "out", "trace.json".to_string())?;
    let domain_name: String = flag(&flags, "domain", "swarm".to_string())?;
    let domain = dsa_core::domain::lookup(&domain_name)
        .ok_or_else(|| format!("unknown domain '{domain_name}'"))?;
    let scale_name: String = flag(&flags, "scale", "smoke".to_string())?;
    let mut scale = dsa_bench::scale::Scale::by_name(&scale_name)
        .ok_or_else(|| format!("unknown --scale '{scale_name}' (smoke|lab|paper)"))?;
    scale.pra.seed = flag(&flags, "seed", scale.pra.seed)?;
    scale.pra.threads = flag(&flags, "threads", scale.pra.threads)?;
    // The exporter needs raw begin/end events, which only event-capture
    // mode records; run a fresh traced PRA workload over the domain's
    // presets (cache is bypassed — a trace of a cache hit has no tree).
    dsa_obs::enable_events();
    dsa_obs::reset();
    let mut indices: Vec<usize> = domain.presets().iter().map(|(_, i)| *i).collect();
    indices.dedup();
    if indices.len() < 2 {
        indices = (0..domain.size().min(6)).collect();
    }
    {
        let _workload = dsa_obs::span_owned(format!("trace.{}", domain.name()));
        let _ = domain.quantify(&indices, scale.effort(), &scale.pra);
    }
    let events = dsa_obs::take_events();
    let doc = dsa_obs::trace::chrome_trace(
        &events,
        &format!("dsa {} pra ({})", domain.name(), scale_name),
    );
    // Self-check before writing: the exported document must satisfy the
    // Trace Event Format invariants we promise.
    let stats =
        dsa_obs::trace::validate(&doc).map_err(|e| format!("exported trace invalid: {e}"))?;
    std::fs::write(&out, &doc).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} span(s) across {} track(s) from {} events \
         (open in https://ui.perfetto.dev or chrome://tracing)",
        stats.spans,
        stats.tracks,
        events.len()
    );
    Ok(())
}

/// Resolves a journal-record token: `-1` is the newest record, `-2` the
/// one before, ...; anything else matches a run id exactly, then as a
/// unique prefix.
fn resolve_record<'a>(
    records: &'a [dsa_obs::JournalRecord],
    token: &str,
) -> Result<&'a dsa_obs::JournalRecord, String> {
    if let Ok(n) = token.parse::<i64>() {
        if n < 0 {
            let back = usize::try_from(-n).unwrap_or(usize::MAX);
            return records
                .len()
                .checked_sub(back)
                .and_then(|i| records.get(i))
                .ok_or_else(|| {
                    format!(
                        "{token} is out of range ({} journal record(s))",
                        records.len()
                    )
                });
        }
    }
    if let Some(r) = records.iter().rev().find(|r| r.meta.run_id == token) {
        return Ok(r);
    }
    let matches: Vec<&dsa_obs::JournalRecord> = records
        .iter()
        .filter(|r| r.meta.run_id.starts_with(token))
        .collect();
    match matches.as_slice() {
        [] => Err(format!(
            "no journal record matches '{token}' (see 'dsa obs runs')"
        )),
        [r] => Ok(r),
        many => Err(format!(
            "'{token}' is ambiguous: {} records match (e.g. {})",
            many.len(),
            many[0].meta.run_id
        )),
    }
}

fn cmd_obs_diff(args: &[String]) -> Result<(), String> {
    let (json, args) = take_switch(args, "--json");
    let (pos, flags) = split_flags(&args)?;
    check_flags(&flags, &["out", "threshold"])?;
    let [a, b] = pos.as_slice() else {
        return Err("obs diff needs two runs (run ids, or -1/-2/... from the end)".into());
    };
    let out: String = flag(&flags, "out", "results".to_string())?;
    let threshold = flag(&flags, "threshold", 25.0f64)?;
    let records = read_journal(&out)?;
    if records.is_empty() {
        return Err(format!("no journal records under {out}"));
    }
    let ra = resolve_record(&records, a)?;
    let rb = resolve_record(&records, b)?;
    if json {
        // Same document the resident server's /diff/<a>/<b> endpoint emits.
        println!("{}", dsa_obs::diff::to_json(ra, rb, threshold));
    } else {
        print!("{}", dsa_obs::diff::render(ra, rb, threshold));
    }
    Ok(())
}

fn cmd_obs_regress(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if let Some(stray) = pos.first() {
        return Err(format!(
            "obs regress takes no positional argument '{stray}'"
        ));
    }
    check_flags(
        &flags,
        &[
            "out",
            "journal",
            "threshold",
            "window",
            "floor",
            "baselines",
        ],
    )?;
    let out: String = flag(&flags, "out", "results".to_string())?;
    let cfg = dsa_obs::regress::RegressConfig {
        threshold_pct: flag(&flags, "threshold", 50.0f64)?,
        window: flag(&flags, "window", 5usize)?.max(1),
        min_self_ns: flag(&flags, "floor", 1_000_000u64)?,
        ..dsa_obs::regress::RegressConfig::default()
    };
    let records = if let Some((_, path)) = flags.iter().find(|(n, _)| n == "journal") {
        let path = std::path::Path::new(path);
        if !path.exists() {
            return Err(format!("journal file {} does not exist", path.display()));
        }
        let (records, skipped) = dsa_obs::journal::read_file(path)?;
        if skipped > 0 {
            eprintln!("(skipped {skipped} unparseable journal line(s))");
        }
        records
    } else {
        read_journal(&out)?
    };
    let baselines_path: String = flag(&flags, "baselines", "BENCH_engines.json".to_string())?;
    let baselines = load_bench_baselines(&baselines_path)?;
    let report = dsa_obs::regress::check(&records, &baselines, &cfg);
    print!("{}", dsa_obs::regress::render(&report, &cfg));
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "perf gate failed: {} regression(s) beyond +{}%",
            report.regressions.len(),
            cfg.threshold_pct
        ))
    }
}

/// Loads the bench ceiling file for the regress gate; a missing file is
/// a warning (ceiling check skipped), an unparseable one is an error.
fn load_bench_baselines(path: &str) -> Result<std::collections::BTreeMap<String, f64>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => dsa_obs::regress::load_baselines(&text).map_err(|e| format!("{path}: {e}")),
        Err(_) => {
            eprintln!("(no bench baselines at {path}: ceiling check skipped)");
            Ok(std::collections::BTreeMap::new())
        }
    }
}

// ---- the live observability layer (dsa obs serve/top/gc/lint) --------------

fn cmd_obs_serve(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    if let Some(stray) = pos.first() {
        return Err(format!("obs serve takes no positional argument '{stray}'"));
    }
    check_flags(
        &flags,
        &["addr", "out", "threshold", "window", "floor", "baselines"],
    )?;
    let addr: String = flag(&flags, "addr", "127.0.0.1:9464".to_string())?;
    let out: String = flag(&flags, "out", "results".to_string())?;
    let cfg = dsa_obs::regress::RegressConfig {
        threshold_pct: flag(&flags, "threshold", 50.0f64)?,
        window: flag(&flags, "window", 5usize)?.max(1),
        min_self_ns: flag(&flags, "floor", 1_000_000u64)?,
        ..dsa_obs::regress::RegressConfig::default()
    };
    let baselines_path: String = flag(&flags, "baselines", "BENCH_engines.json".to_string())?;
    let baselines = load_bench_baselines(&baselines_path)?;
    // The resident server instruments itself (serve.requests and
    // friends), so /metrics is live even before the journal has records.
    dsa_obs::enable_metrics();
    let dir = std::path::PathBuf::from(&out);
    let mode = dsa_obs::serve::Mode::resident(dir, cfg, baselines);
    let server = dsa_obs::serve::Server::bind(&addr, mode)?;
    println!(
        "dsa obs serve: http://{}/ — /runs /runs/<id> /diff/<a>/<b> /regress /metrics \
         /snapshot /healthz (journal: {out}/{}; ^C to stop)",
        server.local_addr()?,
        dsa_obs::journal::JOURNAL_FILE
    );
    server.run();
    Ok(())
}

fn cmd_obs_top(args: &[String]) -> Result<(), String> {
    let (once, args) = take_switch(args, "--once");
    let (pos, flags) = split_flags(&args)?;
    if let Some(stray) = pos.first() {
        return Err(format!("obs top takes no positional argument '{stray}'"));
    }
    check_flags(&flags, &["addr", "interval"])?;
    let addr: String = flag(&flags, "addr", "127.0.0.1:9464".to_string())?;
    let interval = flag(&flags, "interval", 2.0f64)?;
    if !interval.is_finite() || interval <= 0.0 {
        return Err(format!(
            "--interval must be a positive number of seconds, got {interval}"
        ));
    }
    dsa_obs::top::run(&dsa_obs::top::TopOptions {
        addr,
        interval: std::time::Duration::from_secs_f64(interval),
        once,
    })
}

fn cmd_obs_flame(args: &[String]) -> Result<(), String> {
    let (live, args) = take_switch(args, "--live");
    let (pos, flags) = split_flags(&args)?;
    check_flags(
        &flags,
        &["out", "dir", "domain", "scale", "seed", "threads"],
    )?;
    let out: String = flag(&flags, "out", "flame.folded".to_string())?;
    // Allocation weighting rides on the global --alloc switch (main has
    // already stripped and acted on it); it only makes sense live —
    // journal records keep no per-span allocation counts.
    let alloc_weighted = live && dsa_obs::alloc::enabled();
    let folded = if live {
        if let Some(stray) = pos.first() {
            return Err(format!("obs flame --live takes no run argument '{stray}'"));
        }
        let domain_name: String = flag(&flags, "domain", "swarm".to_string())?;
        let domain = dsa_core::domain::lookup(&domain_name)
            .ok_or_else(|| format!("unknown domain '{domain_name}'"))?;
        let scale_name: String = flag(&flags, "scale", "smoke".to_string())?;
        let mut scale = dsa_bench::scale::Scale::by_name(&scale_name)
            .ok_or_else(|| format!("unknown --scale '{scale_name}' (smoke|lab|paper)"))?;
        scale.pra.seed = flag(&flags, "seed", scale.pra.seed)?;
        scale.pra.threads = flag(&flags, "threads", scale.pra.threads)?;
        // Same traced-workload recipe as `obs trace`: real begin/end
        // events are the only source of true call stacks.
        dsa_obs::enable_events();
        dsa_obs::reset();
        let mut indices: Vec<usize> = domain.presets().iter().map(|(_, i)| *i).collect();
        indices.dedup();
        if indices.len() < 2 {
            indices = (0..domain.size().min(6)).collect();
        }
        {
            let _workload = dsa_obs::span_owned(format!("flame.{}", domain.name()));
            let _ = domain.quantify(&indices, scale.effort(), &scale.pra);
        }
        let events = dsa_obs::take_events();
        let weight = if alloc_weighted {
            dsa_obs::flame::Weight::Allocs
        } else {
            dsa_obs::flame::Weight::SelfNanos
        };
        dsa_obs::flame::fold_events(&events, weight)
    } else {
        let dir: String = flag(&flags, "dir", "results".to_string())?;
        let records = read_journal(&dir)?;
        if records.is_empty() {
            return Err(format!("no journal records under {dir}"));
        }
        let token = pos.first().map_or("-1", String::as_str);
        let record = resolve_record(&records, token)?;
        dsa_obs::flame::fold_record(record)
    };
    if folded.is_empty() && alloc_weighted {
        // Not an error: an allocation-weighted profile of a steady-state
        // run SHOULD be empty — that is the zero-alloc claim, verified.
        println!("no allocating stacks: the traced workload ran allocation-free");
    }
    std::fs::write(&out, &folded).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} stack(s), {}-weighted (feed to inferno / flamegraph.pl / speedscope)",
        folded.lines().count(),
        if alloc_weighted {
            "allocation"
        } else {
            "self-time"
        }
    );
    Ok(())
}

fn cmd_obs_gc(args: &[String]) -> Result<(), String> {
    let (dry_run, args) = take_switch(args, "--dry-run");
    let (pos, flags) = split_flags(&args)?;
    if let Some(stray) = pos.first() {
        return Err(format!("obs gc takes no positional argument '{stray}'"));
    }
    check_flags(&flags, &["out", "keep"])?;
    let out: String = flag(&flags, "out", "results".to_string())?;
    let keep = flag(&flags, "keep", 100usize)?;
    if dry_run {
        let plan = dsa_obs::journal::gc_plan(std::path::Path::new(&out), keep)?;
        for id in &plan.dropped {
            println!("drop {id}");
        }
        for id in &plan.kept {
            println!("keep {id}");
        }
        println!(
            "journal gc under {out} (dry run): would keep {} record(s), drop {} \
             (rotated generation folded in; nothing rewritten)",
            plan.kept.len(),
            plan.dropped.len()
        );
        return Ok(());
    }
    let (kept, dropped) = dsa_obs::journal::gc(std::path::Path::new(&out), keep)?;
    println!(
        "journal gc under {out}: kept {kept} record(s), dropped {dropped} \
         (rotated generation folded in)"
    );
    Ok(())
}

fn cmd_obs_lint(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    check_flags(&flags, &["monotone"])?;
    let path = pos
        .first()
        .ok_or("obs lint needs a /metrics body to validate (a file path)")?;
    let body = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let cur = dsa_obs::expo::parse(&body).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid exposition — {} families, {} samples",
        cur.families.len(),
        cur.sample_count()
    );
    if let Some((_, prev_path)) = flags.iter().find(|(n, _)| n == "monotone") {
        let prev_body =
            std::fs::read_to_string(prev_path).map_err(|e| format!("reading {prev_path}: {e}"))?;
        let prev = dsa_obs::expo::parse(&prev_body).map_err(|e| format!("{prev_path}: {e}"))?;
        dsa_obs::expo::check_monotone(&prev, &cur)
            .map_err(|e| format!("monotonicity violated between {prev_path} and {path}: {e}"))?;
        println!("monotone against {prev_path}: every counter series is non-decreasing");
    }
    Ok(())
}

// ---- the piece-level BitTorrent experiment (swarm-domain extra) -----------

fn parse_kind(token: &str) -> Result<ClientKind, String> {
    match token {
        "bittorrent" | "bt" => Ok(ClientKind::BitTorrent),
        "birds" => Ok(ClientKind::Birds),
        "loyal" => Ok(ClientKind::LoyalWhenNeeded),
        "sorts" | "sort-s" => Ok(ClientKind::SortS),
        "random" => Ok(ClientKind::RandomRank),
        other => Err(format!("unknown client kind '{other}'")),
    }
}

fn cmd_bt(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_flags(args)?;
    check_flags(&flags, &["frac", "runs", "seed"])?;
    let a = parse_kind(pos.first().ok_or("bt needs a client kind")?)?;
    let b = pos.get(1).map(|t| parse_kind(t)).transpose()?.unwrap_or(a);
    let frac = flag(&flags, "frac", if pos.len() > 1 { 0.5 } else { 1.0 })?;
    let runs = flag(&flags, "runs", 5usize)?;
    let seed = flag(&flags, "seed", 1u64)?;
    let config = BtConfig::default();
    let (ta, tb) = mixed_runs(a, b, frac, runs, &config, seed);
    if !ta.is_empty() {
        println!("{:<20} {}", a.name(), ConfidenceInterval::ci95(&ta));
    }
    if !tb.is_empty() {
        println!("{:<20} {}", b.name(), ConfidenceInterval::ci95(&tb));
    }
    if !ta.is_empty() && !tb.is_empty() {
        let sig = dsa_stats::nonparametric::significantly_different(&ta, &tb, 0.05);
        println!("difference significant at 5% (Mann-Whitney): {sig}");
    }
    Ok(())
}
