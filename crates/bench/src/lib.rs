//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `figN`/`tableN` module function returns a structured result that
//! can be rendered as an ASCII figure and serialized as CSV; the
//! `experiments` binary drives them from the command line, and the
//! Criterion benches in `benches/` time each experiment at smoke scale so
//! `cargo bench` exercises every code path.
//!
//! The mapping from paper artifact → harness function is indexed in
//! `DESIGN.md` §4; expected-vs-measured outcomes are recorded in
//! `EXPERIMENTS.md`.

#[cfg(feature = "count-allocs")]
pub mod alloc_counter;
pub mod attackfig;
pub mod attribfig;
pub mod btfigs;
pub mod evofig;
pub mod figures;
pub mod gossipfig;
pub mod nashdemo;
pub mod prafig;
pub mod profilefig;
pub mod regress;
pub mod repfig;
pub mod scale;
pub mod sweep;

pub use scale::Scale;
pub use sweep::SweepData;

use dsa_core::domain::DynDomain;
use std::sync::Arc;

/// Registers the three built-in domains (swarm, gossip, reputation) in
/// [`dsa_core::domain`]'s global registry — idempotently — and returns
/// them in registration order. Both binaries and the cross-domain
/// experiment call this before dispatching on domain names.
pub fn register_domains() -> Vec<Arc<dyn DynDomain>> {
    vec![
        dsa_swarm::adapter::register(),
        dsa_gossip::adapter::register(),
        dsa_reputation::adapter::register(),
    ]
}
