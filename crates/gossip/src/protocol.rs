//! The gossip design space: the four §3.1 dimensions, actualized.

use std::fmt;

/// Partner-selection function (§3.1's example actualizations: Random,
/// Best, Loyal, Similarity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Selection {
    /// Choose exchange partners uniformly at random.
    Random,
    /// Choose the partners who delivered the most items recently.
    Best,
    /// Choose the partners with the longest delivery streaks.
    Loyal,
    /// Choose the partners whose item sets most resemble one's own.
    Similarity,
}

impl Selection {
    /// All actualizations, enumeration order.
    pub const ALL: [Selection; 4] = [
        Selection::Random,
        Selection::Best,
        Selection::Loyal,
        Selection::Similarity,
    ];
}

/// How often a node initiates exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Periodicity {
    /// Every round.
    EveryRound,
    /// Every second round.
    EverySecond,
    /// Every fourth round.
    EveryFourth,
}

impl Periodicity {
    /// All actualizations, enumeration order.
    pub const ALL: [Periodicity; 3] = [
        Periodicity::EveryRound,
        Periodicity::EverySecond,
        Periodicity::EveryFourth,
    ];

    /// The period in rounds.
    #[must_use]
    pub fn period(self) -> u64 {
        match self {
            Self::EveryRound => 1,
            Self::EverySecond => 2,
            Self::EveryFourth => 4,
        }
    }
}

/// Filtering function: which items to push per exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Filter {
    /// Push the newest items first.
    NewestFirst,
    /// Push a random sample of held items.
    RandomItems,
    /// Push nothing (the gossip free-rider — nodes can still receive).
    None,
}

impl Filter {
    /// All actualizations, enumeration order.
    pub const ALL: [Filter; 3] = [Filter::NewestFirst, Filter::RandomItems, Filter::None];
}

/// Record-maintenance policy for the local item database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Memory {
    /// Keep everything.
    Unbounded,
    /// Keep at most 64 items, evicting the oldest.
    Lru64,
    /// Keep at most 16 items, evicting the oldest.
    Lru16,
}

impl Memory {
    /// All actualizations, enumeration order.
    pub const ALL: [Memory; 3] = [Memory::Unbounded, Memory::Lru64, Memory::Lru16];

    /// Capacity limit, if any.
    #[must_use]
    pub fn capacity(self) -> Option<usize> {
        match self {
            Self::Unbounded => None,
            Self::Lru64 => Some(64),
            Self::Lru16 => Some(16),
        }
    }
}

/// A complete gossip protocol: one actualization per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GossipProtocol {
    /// Partner selection.
    pub selection: Selection,
    /// Exchange periodicity.
    pub periodicity: Periodicity,
    /// Item filter.
    pub filter: Filter,
    /// Record maintenance.
    pub memory: Memory,
}

/// Size of the actualized gossip space (4 × 3 × 3 × 3).
pub const GOSSIP_SPACE_SIZE: usize = 108;

impl GossipProtocol {
    /// Flat index in `0..GOSSIP_SPACE_SIZE`.
    #[must_use]
    pub fn index(&self) -> usize {
        let s = Selection::ALL
            .iter()
            .position(|x| x == &self.selection)
            .expect("in ALL");
        let p = Periodicity::ALL
            .iter()
            .position(|x| x == &self.periodicity)
            .expect("in ALL");
        let f = Filter::ALL
            .iter()
            .position(|x| x == &self.filter)
            .expect("in ALL");
        let m = Memory::ALL
            .iter()
            .position(|x| x == &self.memory)
            .expect("in ALL");
        ((s * 3 + p) * 3 + f) * 3 + m
    }

    /// Decodes a flat index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < GOSSIP_SPACE_SIZE, "gossip index out of range");
        let m = index % 3;
        let f = (index / 3) % 3;
        let p = (index / 9) % 3;
        let s = index / 27;
        Self {
            selection: Selection::ALL[s],
            periodicity: Periodicity::ALL[p],
            filter: Filter::ALL[f],
            memory: Memory::ALL[m],
        }
    }

    /// Iterates the whole space.
    pub fn all() -> impl Iterator<Item = GossipProtocol> {
        (0..GOSSIP_SPACE_SIZE).map(Self::from_index)
    }

    /// The baseline "push newest to random partners every round, keep
    /// everything" protocol.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            selection: Selection::Random,
            periodicity: Periodicity::EveryRound,
            filter: Filter::NewestFirst,
            memory: Memory::Unbounded,
        }
    }
}

impl fmt::Display for GossipProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}/{:?}/{:?}/{:?}",
            self.selection, self.periodicity, self.filter, self.memory
        )
    }
}

/// The generic design-space descriptor for this domain.
#[must_use]
pub fn design_space() -> dsa_core::DesignSpace {
    let names = |v: Vec<String>| v;
    dsa_core::DesignSpace::new(
        "gossip",
        vec![
            dsa_core::Dimension::new(
                "Selection",
                names(Selection::ALL.iter().map(|s| format!("{s:?}")).collect()),
            ),
            dsa_core::Dimension::new(
                "Periodicity",
                names(Periodicity::ALL.iter().map(|s| format!("{s:?}")).collect()),
            ),
            dsa_core::Dimension::new(
                "Filter",
                names(Filter::ALL.iter().map(|s| format!("{s:?}")).collect()),
            ),
            dsa_core::Dimension::new(
                "Memory",
                names(Memory::ALL.iter().map(|s| format!("{s:?}")).collect()),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_size_and_roundtrip() {
        assert_eq!(GossipProtocol::all().count(), GOSSIP_SPACE_SIZE);
        for i in 0..GOSSIP_SPACE_SIZE {
            assert_eq!(GossipProtocol::from_index(i).index(), i);
        }
    }

    #[test]
    fn protocols_distinct() {
        let set: HashSet<GossipProtocol> = GossipProtocol::all().collect();
        assert_eq!(set.len(), GOSSIP_SPACE_SIZE);
    }

    #[test]
    fn descriptor_matches() {
        assert_eq!(design_space().size(), GOSSIP_SPACE_SIZE);
    }

    #[test]
    fn periods_and_capacities() {
        assert_eq!(Periodicity::EveryFourth.period(), 4);
        assert_eq!(Memory::Lru16.capacity(), Some(16));
        assert_eq!(Memory::Unbounded.capacity(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_bounds() {
        let _ = GossipProtocol::from_index(GOSSIP_SPACE_SIZE);
    }
}
