//! The gossip domain for the generic registry ([`dsa_core::domain`]).
//!
//! [`crate::engine::GossipSim`] already implements
//! [`dsa_core::EncounterSim`]; this module adds the metadata layer —
//! naming, parsing, presets — that lets the generic CLI dispatcher,
//! sweep cache and cross-domain figures drive the 108-protocol gossip
//! space exactly like the other domains.

use crate::engine::{GossipConfig, GossipSim};
use crate::presets;
use crate::protocol::{design_space, GossipProtocol};
use dsa_core::domain::{Domain, DynDomain, Effort};
use std::sync::Arc;

/// The gossip domain adapter.
pub struct GossipDomain;

impl Domain for GossipDomain {
    type Sim = GossipSim;

    fn name(&self) -> &'static str {
        "gossip"
    }

    fn space(&self) -> dsa_core::DesignSpace {
        design_space()
    }

    fn protocol(&self, index: usize) -> GossipProtocol {
        GossipProtocol::from_index(index)
    }

    fn code(&self, index: usize) -> String {
        GossipProtocol::from_index(index).to_string()
    }

    fn presets(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("random-push", presets::random_push().index()),
            ("reciprocal", presets::reciprocal().index()),
            ("lazy", presets::lazy().index()),
            ("silent", presets::silent().index()),
        ]
    }

    fn aliases(&self) -> Vec<(&'static str, usize)> {
        vec![("baseline", GossipProtocol::baseline().index())]
    }

    fn attackers(&self) -> Vec<(&'static str, usize)> {
        vec![("silent", presets::silent().index())]
    }

    fn population(&self, effort: Effort) -> usize {
        self.sim(effort, 0.0).config.nodes
    }

    fn sim(&self, effort: Effort, _churn: f64) -> GossipSim {
        // No churn model in the gossip simulator (supports_churn stays
        // false); effort scales the round count around the default 120.
        let rounds = match effort {
            Effort::Smoke => 60,
            Effort::Lab => GossipConfig::default().rounds,
            Effort::Paper => 240,
        };
        GossipSim {
            config: GossipConfig {
                rounds,
                ..GossipConfig::default()
            },
        }
    }
}

/// Registers (or refreshes) the gossip domain in the global registry and
/// returns its handle.
pub fn register() -> Arc<dyn DynDomain> {
    dsa_core::domain::register_domain(GossipDomain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_surface_matches_space() {
        let d = register();
        assert_eq!(d.name(), "gossip");
        assert_eq!(d.size(), crate::protocol::GOSSIP_SPACE_SIZE);
        let i = d.parse("silent").unwrap();
        assert_eq!(i, presets::silent().index());
        assert!(d.describe(i).contains("Filter=None"));
        assert!(!d.supports_churn());
    }

    #[test]
    fn churn_hook_falls_back_to_plain_encounter() {
        // The gossip simulator has no churn model, so the churn hook is
        // the identity transform on the encounter stream.
        let d = register();
        let a = presets::reciprocal().index();
        let b = presets::silent().index();
        let calm = d.run_encounter(a, b, 0.5, Effort::Smoke, 13);
        let churned = d.run_encounter_churn(a, b, 0.5, Effort::Smoke, 0.2, 13);
        assert_eq!(calm, churned);
        assert!(d.whitewasher().is_none());
    }

    #[test]
    fn mixed_composes_through_the_pairwise_fallback() {
        // No native multi-protocol hook: gossip serves `run_mixed` via
        // the core round-robin fallback, whose one- and two-group cases
        // reproduce the plain hooks bit for bit.
        let d = register();
        assert!(!d.supports_mixed());
        let n = d.population(Effort::Smoke);
        let a = presets::reciprocal().index();
        let b = presets::silent().index();
        assert_eq!(
            d.run_mixed(&[(a, n)], Effort::Smoke, 3),
            vec![d.run_homogeneous(a, Effort::Smoke, 3)]
        );
        let (ua, ub) = d.run_encounter(a, b, 0.5, Effort::Smoke, 3);
        assert_eq!(
            d.run_mixed(&[(a, n / 2), (b, n - n / 2)], Effort::Smoke, 3),
            vec![ua, ub]
        );
        let three = d.run_mixed(
            &[(a, n / 2), (presets::lazy().index(), n / 4), (b, n / 4)],
            Effort::Smoke,
            3,
        );
        assert_eq!(three.len(), 3);
        assert!(three.iter().all(|u| u.is_finite()));
    }

    #[test]
    fn erased_homogeneous_matches_typed() {
        let d = register();
        let i = GossipProtocol::baseline().index();
        let erased = d.run_homogeneous(i, Effort::Lab, 7);
        let sim = GossipDomain.sim(Effort::Lab, 0.0);
        let typed = dsa_core::EncounterSim::run_homogeneous(&sim, &GossipProtocol::baseline(), 7);
        assert_eq!(erased, typed);
    }
}
