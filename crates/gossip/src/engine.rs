//! Push-gossip rumor dissemination simulator.
//!
//! One item is injected at a uniformly random node each round. Nodes
//! periodically push a bounded batch of held items to selected partners.
//! Utility = number of item deliveries received (a node's coverage), the
//! application-defined performance measure for this domain.

use crate::protocol::{Filter, GossipProtocol, Memory, Selection};
use dsa_core::sim::EncounterSim;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of rounds (= items injected).
    pub rounds: usize,
    /// Exchange partners per initiation.
    pub fanout: usize,
    /// Items pushed per exchange.
    pub batch: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            nodes: 40,
            rounds: 120,
            fanout: 2,
            batch: 4,
        }
    }
}

/// Per-node state.
struct Node {
    /// Items held, newest last (bounded by the memory policy).
    items: Vec<u32>,
    /// Deliveries received from each peer in the last window.
    received_from: Vec<f64>,
    /// Delivery streaks per peer (for Loyal selection).
    streak: Vec<u32>,
    /// Total novel deliveries (the utility).
    deliveries: f64,
}

impl Node {
    fn has(&self, item: u32) -> bool {
        self.items.contains(&item)
    }

    fn insert(&mut self, item: u32, memory: Memory) -> bool {
        if self.has(item) {
            return false;
        }
        self.items.push(item);
        if let Some(cap) = memory.capacity() {
            while self.items.len() > cap {
                self.items.remove(0);
            }
        }
        true
    }
}

/// Runs one gossip simulation; returns per-node utilities. Traced as a
/// `gossip.run` span with `gossip.{setup,rounds,payoff}` phase children
/// when tracing is on.
pub fn run(
    protocols: &[GossipProtocol],
    assignment: &[usize],
    config: &GossipConfig,
    seed: u64,
) -> Vec<f64> {
    let n = config.nodes;
    assert!(n >= 2, "need at least two nodes");
    assert_eq!(assignment.len(), n, "assignment must cover every node");

    let _run_span = dsa_obs::span("gossip.run");
    let setup_span = dsa_obs::span("gossip.setup");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut nodes: Vec<Node> = (0..n)
        .map(|_| Node {
            items: Vec::new(),
            received_from: vec![0.0; n],
            streak: vec![0; n],
            deliveries: 0.0,
        })
        .collect();
    drop(setup_span);

    let rounds_span = dsa_obs::span("gossip.rounds");
    for round in 0..config.rounds {
        // Inject this round's item at a random node.
        let source = rng.index(n);
        let item = round as u32;
        let mem = protocols[assignment[source]].memory;
        if nodes[source].insert(item, mem) {
            nodes[source].deliveries += 1.0;
        }

        // Window bookkeeping for Best/Loyal selections: streaks update
        // every 4 rounds.
        let window_closes = round % 4 == 3;

        for i in 0..n {
            let proto = &protocols[assignment[i]];
            if !(round as u64).is_multiple_of(proto.periodicity.period()) {
                continue;
            }
            if proto.filter == Filter::None {
                continue;
            }
            // Select partners.
            let partners: Vec<usize> = match proto.selection {
                Selection::Random => sampling::sample_indices(n - 1, config.fanout, &mut rng)
                    .into_iter()
                    .map(|x| if x >= i { x + 1 } else { x })
                    .collect(),
                Selection::Best => {
                    top_partners(i, n, config.fanout, &mut rng, |j| nodes[i].received_from[j])
                }
                Selection::Loyal => top_partners(i, n, config.fanout, &mut rng, |j| {
                    f64::from(nodes[i].streak[j])
                }),
                Selection::Similarity => {
                    let mine = &nodes[i].items;
                    top_partners(i, n, config.fanout, &mut rng, |j| {
                        nodes[j].items.iter().filter(|it| mine.contains(it)).count() as f64
                    })
                }
            };

            // Build the outgoing batch.
            let batch: Vec<u32> = match proto.filter {
                Filter::NewestFirst => nodes[i]
                    .items
                    .iter()
                    .rev()
                    .take(config.batch)
                    .copied()
                    .collect(),
                Filter::RandomItems => {
                    let idx =
                        sampling::sample_indices(nodes[i].items.len(), config.batch, &mut rng);
                    idx.into_iter().map(|x| nodes[i].items[x]).collect()
                }
                Filter::None => Vec::new(),
            };

            // Deliver.
            for &j in &partners {
                let mem = protocols[assignment[j]].memory;
                for &item in &batch {
                    if nodes[j].insert(item, mem) {
                        nodes[j].deliveries += 1.0;
                        nodes[j].received_from[i] += 1.0;
                    }
                }
            }
        }

        if window_closes {
            for node in &mut nodes {
                for j in 0..n {
                    if node.received_from[j] > 0.0 {
                        node.streak[j] += 1;
                    } else {
                        node.streak[j] = 0;
                    }
                    node.received_from[j] = 0.0;
                }
            }
        }
    }
    drop(rounds_span);

    let _payoff_span = dsa_obs::span("gossip.payoff");
    nodes.iter().map(|nd| nd.deliveries).collect()
}

/// Top-`fanout` peers by score; ties resolve randomly (a shared
/// deterministic tie-break would concentrate the whole population's
/// pushes on the lowest-indexed nodes).
fn top_partners(
    me: usize,
    n: usize,
    fanout: usize,
    rng: &mut Xoshiro256pp,
    score: impl Fn(usize) -> f64,
) -> Vec<usize> {
    let mut others: Vec<usize> = (0..n).filter(|&j| j != me).collect();
    sampling::shuffle(&mut others, rng);
    let values: Vec<f64> = others.iter().map(|&j| score(j)).collect();
    sampling::rank_indices(&values, false)
        .into_iter()
        .take(fanout)
        .map(|x| others[x])
        .collect()
}

/// The gossip domain as an [`EncounterSim`].
#[derive(Debug, Clone, Default)]
pub struct GossipSim {
    /// Shared simulation parameters.
    pub config: GossipConfig,
}

impl EncounterSim for GossipSim {
    type Protocol = GossipProtocol;

    fn run_homogeneous(&self, protocol: &GossipProtocol, seed: u64) -> f64 {
        let u = run(
            &[*protocol],
            &vec![0; self.config.nodes],
            &self.config,
            seed,
        );
        u.iter().sum::<f64>() / u.len() as f64
    }

    fn run_encounter(
        &self,
        a: &GossipProtocol,
        b: &GossipProtocol,
        fraction_a: f64,
        seed: u64,
    ) -> (f64, f64) {
        let n = self.config.nodes;
        let (count_a, assignment) = dsa_core::sim::split_population(n, fraction_a);
        let u = run(&[*a, *b], &assignment, &self.config, seed);
        let mean = |lo: usize, hi: usize| u[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        (mean(0, count_a), mean(count_a, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Periodicity;

    fn homog(p: GossipProtocol, seed: u64) -> f64 {
        let cfg = GossipConfig::default();
        let u = run(&[p], &vec![0; cfg.nodes], &cfg, seed);
        u.iter().sum::<f64>() / u.len() as f64
    }

    #[test]
    fn baseline_disseminates() {
        let u = homog(GossipProtocol::baseline(), 1);
        // Far more deliveries than the bare injections (120/40 per node).
        assert!(u > 10.0, "utility {u}");
    }

    #[test]
    fn silent_population_only_gets_injections() {
        let mut p = GossipProtocol::baseline();
        p.filter = crate::protocol::Filter::None;
        let u = homog(p, 2);
        // Only the injected items count: 120 items over 40 nodes.
        assert!((u - 3.0).abs() < 1.0, "utility {u}");
    }

    #[test]
    fn slower_periodicity_reduces_coverage() {
        let every = homog(GossipProtocol::baseline(), 3);
        let mut p = GossipProtocol::baseline();
        p.periodicity = Periodicity::EveryFourth;
        let fourth = homog(p, 3);
        assert!(fourth < every, "every={every} fourth={fourth}");
    }

    #[test]
    fn tiny_memory_hurts() {
        let big = homog(GossipProtocol::baseline(), 4);
        let mut p = GossipProtocol::baseline();
        p.memory = Memory::Lru16;
        let small = homog(p, 4);
        assert!(small <= big, "big={big} small={small}");
    }

    #[test]
    fn freeriders_exploit_random_but_not_best() {
        let sim = GossipSim::default();
        let pusher = GossipProtocol::baseline();
        let mut silent = pusher;
        silent.filter = Filter::None;
        // Against Random selection, the silent minority still receives.
        let (s_random, p_random) = sim.run_encounter(&silent, &pusher, 0.25, 5);
        assert!(s_random > 3.0, "silent got {s_random}");
        // Best selection (service-based) starves them relative to pushers.
        let mut best = pusher;
        best.selection = Selection::Best;
        let (s_best, p_best) = sim.run_encounter(&silent, &best, 0.25, 6);
        let ratio_random = s_random / p_random;
        let ratio_best = s_best / p_best;
        assert!(
            ratio_best < ratio_random,
            "Best should discriminate: {ratio_best} vs {ratio_random}"
        );
    }

    #[test]
    fn deterministic() {
        let sim = GossipSim::default();
        let a = sim.run_homogeneous(&GossipProtocol::baseline(), 9);
        let b = sim.run_homogeneous(&GossipProtocol::baseline(), 9);
        assert_eq!(a, b);
    }
}
