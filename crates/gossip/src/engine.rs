//! Push-gossip rumor dissemination simulator.
//!
//! One item is injected at a uniformly random node each round. Nodes
//! periodically push a bounded batch of held items to selected partners.
//! Utility = number of item deliveries received (a node's coverage), the
//! application-defined performance measure for this domain.

use crate::protocol::{Filter, GossipProtocol, Memory, Selection};
use dsa_core::sim::EncounterSim;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of rounds (= items injected).
    pub rounds: usize,
    /// Exchange partners per initiation.
    pub fanout: usize,
    /// Items pushed per exchange.
    pub batch: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            nodes: 40,
            rounds: 120,
            fanout: 2,
            batch: 4,
        }
    }
}

/// All nodes' state as flat arrays: item rows (newest last, one
/// `rounds`-wide row per node — item ids are round numbers, so a node
/// holds each at most once), an O(1) membership map mirroring the rows,
/// and the delivery/streak matrices the Best/Loyal selections read.
struct NodeState {
    rounds: usize,
    /// Items held, newest last: node `i`'s row is
    /// `items[i * rounds .. i * rounds + items_len[i]]`.
    items: Vec<u32>,
    items_len: Vec<usize>,
    /// `holds[i * rounds + item]` ⇔ item is in node `i`'s row — the
    /// linear `Vec::contains` scan this replaces, as one bit probe.
    holds: Vec<bool>,
    /// Deliveries received from each peer in the last window (row-major).
    received_from: Vec<f64>,
    /// Delivery streaks per peer (for Loyal selection), row-major.
    streak: Vec<u32>,
    /// Total novel deliveries per node (the utility).
    deliveries: Vec<f64>,
}

impl NodeState {
    /// Node `i`'s held items, oldest first.
    #[inline]
    fn row(&self, i: usize) -> &[u32] {
        &self.items[i * self.rounds..i * self.rounds + self.items_len[i]]
    }

    /// Inserts `item` into node `i`'s memory unless already held,
    /// evicting oldest-first past the memory policy's capacity. Returns
    /// whether the item was novel.
    fn insert(&mut self, i: usize, item: u32, memory: Memory) -> bool {
        if self.holds[i * self.rounds + item as usize] {
            return false;
        }
        let base = i * self.rounds;
        self.items[base + self.items_len[i]] = item;
        self.items_len[i] += 1;
        self.holds[base + item as usize] = true;
        if let Some(cap) = memory.capacity() {
            while self.items_len[i] > cap {
                let evicted = self.items[base];
                self.holds[base + evicted as usize] = false;
                self.items
                    .copy_within(base + 1..base + self.items_len[i], base);
                self.items_len[i] -= 1;
            }
        }
        true
    }
}

/// Reusable working memory for [`run_with_scratch`]: the flat node state
/// plus the partner/batch/ranking buffers the round loop cycles through.
/// After one warm run at a given `(nodes, rounds)` size, subsequent runs
/// through the same scratch perform zero steady-state heap allocations
/// per round. Every buffer is re-initialized before use, so a dirty
/// scratch is bit-identical to a fresh one.
#[derive(Debug, Default)]
pub struct GossipScratch {
    items: Vec<u32>,
    items_len: Vec<usize>,
    holds: Vec<bool>,
    received_from: Vec<f64>,
    streak: Vec<u32>,
    deliveries: Vec<f64>,
    /// Selected exchange partners for one initiation.
    partners: Vec<usize>,
    /// Raw sample buffer behind Random selection / RandomItems.
    sample: Vec<usize>,
    /// Outgoing batch for one initiation.
    batch: Vec<u32>,
    /// `top_partners_into` buffers: candidate peers, their scores and
    /// the descending rank over those scores.
    others: Vec<usize>,
    values: Vec<f64>,
    ranks: Vec<usize>,
}

impl GossipScratch {
    /// Heap bytes held by the arena: every buffer's capacity times its
    /// element size. Monotone across runs through one scratch —
    /// published as the `mem.arena.gossip_bytes` high-water gauge.
    #[must_use]
    pub fn footprint(&self) -> usize {
        use dsa_obs::mem::vec_bytes;
        vec_bytes(&self.items)
            + vec_bytes(&self.items_len)
            + vec_bytes(&self.holds)
            + vec_bytes(&self.received_from)
            + vec_bytes(&self.streak)
            + vec_bytes(&self.deliveries)
            + vec_bytes(&self.partners)
            + vec_bytes(&self.sample)
            + vec_bytes(&self.batch)
            + vec_bytes(&self.others)
            + vec_bytes(&self.values)
            + vec_bytes(&self.ranks)
    }
}

/// Runs one gossip simulation; returns per-node utilities. Traced as a
/// `gossip.run` span with `gossip.{setup,rounds,payoff}` phase children
/// when tracing is on.
///
/// Thin wrapper over [`run_with_scratch`] using a thread-local
/// [`GossipScratch`], so callers that loop over runs on one thread —
/// sweep workers, benchmarks, tests — reuse one arena per thread.
pub fn run(
    protocols: &[GossipProtocol],
    assignment: &[usize],
    config: &GossipConfig,
    seed: u64,
) -> Vec<f64> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<GossipScratch> =
            std::cell::RefCell::new(GossipScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => run_with_scratch(protocols, assignment, config, seed, &mut scratch),
        // Re-entrant call on this thread: fall back to a fresh scratch
        // rather than aliasing the one already borrowed.
        Err(_) => run_with_scratch(
            protocols,
            assignment,
            config,
            seed,
            &mut GossipScratch::default(),
        ),
    })
}

/// [`run`] against a caller-owned [`GossipScratch`]. Output is
/// bit-identical to [`run`] regardless of the scratch's prior contents.
///
/// # Panics
///
/// Panics if there are fewer than two nodes or the assignment does not
/// cover every node.
pub fn run_with_scratch(
    protocols: &[GossipProtocol],
    assignment: &[usize],
    config: &GossipConfig,
    seed: u64,
    scratch: &mut GossipScratch,
) -> Vec<f64> {
    let n = config.nodes;
    assert!(n >= 2, "need at least two nodes");
    assert_eq!(assignment.len(), n, "assignment must cover every node");

    let _run_span = dsa_obs::span("gossip.run");
    let setup_span = dsa_obs::span("gossip.setup");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let GossipScratch {
        items,
        items_len,
        holds,
        received_from,
        streak,
        deliveries,
        partners,
        sample,
        batch,
        others,
        values,
        ranks,
    } = scratch;
    let rounds = config.rounds;
    items.clear();
    items.resize(n * rounds, 0);
    items_len.clear();
    items_len.resize(n, 0);
    holds.clear();
    holds.resize(n * rounds, false);
    received_from.clear();
    received_from.resize(n * n, 0.0);
    streak.clear();
    streak.resize(n * n, 0);
    deliveries.clear();
    deliveries.resize(n, 0.0);
    let mut nodes = NodeState {
        rounds,
        items: std::mem::take(items),
        items_len: std::mem::take(items_len),
        holds: std::mem::take(holds),
        received_from: std::mem::take(received_from),
        streak: std::mem::take(streak),
        deliveries: std::mem::take(deliveries),
    };
    drop(setup_span);

    // Allocation count at the edge of the round loop: the loop is the
    // steady state, so its delta — fed to mem.run_allocs.gossip under
    // --alloc — must be zero once this scratch is warm. Setup and
    // payoff assembly allocate outputs by design and stay outside
    // the window.
    let loop_allocs = dsa_obs::alloc::thread_count();
    let rounds_span = dsa_obs::span("gossip.rounds");
    for round in 0..rounds {
        // Inject this round's item at a random node.
        let source = rng.index(n);
        let item = round as u32;
        let mem = protocols[assignment[source]].memory;
        if nodes.insert(source, item, mem) {
            nodes.deliveries[source] += 1.0;
        }

        // Window bookkeeping for Best/Loyal selections: streaks update
        // every 4 rounds.
        let window_closes = round % 4 == 3;

        for i in 0..n {
            let proto = &protocols[assignment[i]];
            if !(round as u64).is_multiple_of(proto.periodicity.period()) {
                continue;
            }
            if proto.filter == Filter::None {
                continue;
            }
            // Select partners.
            partners.clear();
            match proto.selection {
                Selection::Random => {
                    sampling::sample_indices_into(n - 1, config.fanout, &mut rng, sample);
                    partners.extend(sample.iter().map(|&x| if x >= i { x + 1 } else { x }));
                }
                Selection::Best => top_partners_into(
                    i,
                    n,
                    config.fanout,
                    &mut rng,
                    |j| nodes.received_from[i * n + j],
                    others,
                    values,
                    ranks,
                    partners,
                ),
                Selection::Loyal => top_partners_into(
                    i,
                    n,
                    config.fanout,
                    &mut rng,
                    |j| f64::from(nodes.streak[i * n + j]),
                    others,
                    values,
                    ranks,
                    partners,
                ),
                Selection::Similarity => {
                    // O(1) membership via `holds` replaces the quadratic
                    // mine-contains-theirs scan, same counts.
                    let holds_me = &nodes.holds[i * rounds..(i + 1) * rounds];
                    let state = &nodes;
                    top_partners_into(
                        i,
                        n,
                        config.fanout,
                        &mut rng,
                        |j| {
                            state
                                .row(j)
                                .iter()
                                .filter(|&&it| holds_me[it as usize])
                                .count() as f64
                        },
                        others,
                        values,
                        ranks,
                        partners,
                    );
                }
            }

            // Build the outgoing batch.
            batch.clear();
            match proto.filter {
                Filter::NewestFirst => {
                    batch.extend(nodes.row(i).iter().rev().take(config.batch));
                }
                Filter::RandomItems => {
                    sampling::sample_indices_into(
                        nodes.items_len[i],
                        config.batch,
                        &mut rng,
                        sample,
                    );
                    let row = nodes.row(i);
                    batch.extend(sample.iter().map(|&x| row[x]));
                }
                Filter::None => {}
            }

            // Deliver.
            for &j in partners.iter() {
                let mem = protocols[assignment[j]].memory;
                for &item in batch.iter() {
                    if nodes.insert(j, item, mem) {
                        nodes.deliveries[j] += 1.0;
                        nodes.received_from[j * n + i] += 1.0;
                    }
                }
            }
        }

        if window_closes {
            for (s, r) in nodes.streak.iter_mut().zip(nodes.received_from.iter_mut()) {
                if *r > 0.0 {
                    *s += 1;
                } else {
                    *s = 0;
                }
                *r = 0.0;
            }
        }
    }
    drop(rounds_span);
    let loop_allocs = dsa_obs::alloc::thread_count().saturating_sub(loop_allocs);

    let _payoff_span = dsa_obs::span("gossip.payoff");
    let out = nodes.deliveries.clone();
    // Return the buffers to the scratch for the next run.
    *items = nodes.items;
    *items_len = nodes.items_len;
    *holds = nodes.holds;
    *received_from = nodes.received_from;
    *streak = nodes.streak;
    *deliveries = nodes.deliveries;

    // Arena accounting (see the swarm engine for the pattern).
    if dsa_obs::metrics_enabled() {
        let bytes = scratch.footprint() as f64;
        dsa_obs::gauge_max("mem.arena.gossip_bytes", bytes);
        dsa_obs::gauge_max("mem.arena_peak_bytes", bytes);
        if dsa_obs::alloc::enabled() {
            dsa_obs::observe_thread_dependent("mem.run_allocs.gossip", loop_allocs);
        }
    }
    out
}

/// Top-`fanout` peers by score into `out`; ties resolve randomly (a
/// shared deterministic tie-break would concentrate the whole
/// population's pushes on the lowest-indexed nodes). `others`, `values`
/// and `ranks` are caller-owned scratch (contents ignored, clobbered).
#[allow(clippy::too_many_arguments)]
fn top_partners_into(
    me: usize,
    n: usize,
    fanout: usize,
    rng: &mut Xoshiro256pp,
    score: impl Fn(usize) -> f64,
    others: &mut Vec<usize>,
    values: &mut Vec<f64>,
    ranks: &mut Vec<usize>,
    out: &mut Vec<usize>,
) {
    others.clear();
    others.extend((0..n).filter(|&j| j != me));
    sampling::shuffle(others, rng);
    values.clear();
    values.extend(others.iter().map(|&j| score(j)));
    sampling::rank_indices_into(values, false, ranks);
    out.extend(ranks.iter().take(fanout).map(|&x| others[x]));
}

/// The gossip domain as an [`EncounterSim`].
#[derive(Debug, Clone, Default)]
pub struct GossipSim {
    /// Shared simulation parameters.
    pub config: GossipConfig,
}

impl EncounterSim for GossipSim {
    type Protocol = GossipProtocol;

    fn run_homogeneous(&self, protocol: &GossipProtocol, seed: u64) -> f64 {
        let u = dsa_core::sim::with_zero_assignment(self.config.nodes, |assignment| {
            run(&[*protocol], assignment, &self.config, seed)
        });
        u.iter().sum::<f64>() / u.len() as f64
    }

    fn run_encounter(
        &self,
        a: &GossipProtocol,
        b: &GossipProtocol,
        fraction_a: f64,
        seed: u64,
    ) -> (f64, f64) {
        let n = self.config.nodes;
        let (count_a, assignment) = dsa_core::sim::split_population(n, fraction_a);
        let u = run(&[*a, *b], &assignment, &self.config, seed);
        let mean = |lo: usize, hi: usize| u[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        (mean(0, count_a), mean(count_a, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Periodicity;

    fn homog(p: GossipProtocol, seed: u64) -> f64 {
        let cfg = GossipConfig::default();
        let u = run(&[p], &vec![0; cfg.nodes], &cfg, seed);
        u.iter().sum::<f64>() / u.len() as f64
    }

    #[test]
    fn baseline_disseminates() {
        let u = homog(GossipProtocol::baseline(), 1);
        // Far more deliveries than the bare injections (120/40 per node).
        assert!(u > 10.0, "utility {u}");
    }

    #[test]
    fn silent_population_only_gets_injections() {
        let mut p = GossipProtocol::baseline();
        p.filter = crate::protocol::Filter::None;
        let u = homog(p, 2);
        // Only the injected items count: 120 items over 40 nodes.
        assert!((u - 3.0).abs() < 1.0, "utility {u}");
    }

    #[test]
    fn slower_periodicity_reduces_coverage() {
        let every = homog(GossipProtocol::baseline(), 3);
        let mut p = GossipProtocol::baseline();
        p.periodicity = Periodicity::EveryFourth;
        let fourth = homog(p, 3);
        assert!(fourth < every, "every={every} fourth={fourth}");
    }

    #[test]
    fn tiny_memory_hurts() {
        let big = homog(GossipProtocol::baseline(), 4);
        let mut p = GossipProtocol::baseline();
        p.memory = Memory::Lru16;
        let small = homog(p, 4);
        assert!(small <= big, "big={big} small={small}");
    }

    #[test]
    fn freeriders_exploit_random_but_not_best() {
        let sim = GossipSim::default();
        let pusher = GossipProtocol::baseline();
        let mut silent = pusher;
        silent.filter = Filter::None;
        // Against Random selection, the silent minority still receives.
        let (s_random, p_random) = sim.run_encounter(&silent, &pusher, 0.25, 5);
        assert!(s_random > 3.0, "silent got {s_random}");
        // Best selection (service-based) starves them relative to pushers.
        let mut best = pusher;
        best.selection = Selection::Best;
        let (s_best, p_best) = sim.run_encounter(&silent, &best, 0.25, 6);
        let ratio_random = s_random / p_random;
        let ratio_best = s_best / p_best;
        assert!(
            ratio_best < ratio_random,
            "Best should discriminate: {ratio_best} vs {ratio_random}"
        );
    }

    #[test]
    fn deterministic() {
        let sim = GossipSim::default();
        let a = sim.run_homogeneous(&GossipProtocol::baseline(), 9);
        let b = sim.run_homogeneous(&GossipProtocol::baseline(), 9);
        assert_eq!(a, b);
    }
}
