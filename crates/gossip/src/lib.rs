//! A second DSA domain: gossip-based dissemination protocols.
//!
//! Section 3.1 illustrates design-space specification with gossip
//! protocols: "the Parameterization phase of the design space for Gossip
//! Protocols could result in the following salient dimensions: i)
//! Selection function for choosing partners ..., ii) Periodicity of data
//! exchange, iii) Filtering function for determining data to exchange,
//! iv) Record maintenance policy in local database" — and §7 lists
//! "domains other than P2P [file swarming]" as future work.
//!
//! This crate actualizes exactly those four dimensions over a push-gossip
//! rumor-dissemination simulator and plugs the result into the same
//! [`dsa_core`] machinery (the PRA quantification, tournaments, heuristic
//! search) used for file swarming — demonstrating that the framework is
//! domain-agnostic.

pub mod adapter;
pub mod engine;
pub mod presets;
pub mod protocol;

pub use adapter::GossipDomain;
pub use engine::{GossipConfig, GossipSim};
pub use protocol::{Filter, GossipProtocol, Memory, Periodicity, Selection};
