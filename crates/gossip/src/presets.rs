//! Named gossip protocols used by examples and docs.

use crate::protocol::{Filter, GossipProtocol, Memory, Periodicity, Selection};

/// The classic random push gossip: random partners, every round, newest
/// items first, unbounded store.
#[must_use]
pub fn random_push() -> GossipProtocol {
    GossipProtocol::baseline()
}

/// A reciprocity-enforcing variant: pushes to the peers that served it
/// best (the BarterCast-flavored point of this space).
#[must_use]
pub fn reciprocal() -> GossipProtocol {
    GossipProtocol {
        selection: Selection::Best,
        ..GossipProtocol::baseline()
    }
}

/// A lazy participant: gossips rarely with a tiny cache — the kind of
/// under-provisioned node record-maintenance policies must tolerate.
#[must_use]
pub fn lazy() -> GossipProtocol {
    GossipProtocol {
        periodicity: Periodicity::EveryFourth,
        memory: Memory::Lru16,
        ..GossipProtocol::baseline()
    }
}

/// A pure free-rider: receives but never pushes.
#[must_use]
pub fn silent() -> GossipProtocol {
    GossipProtocol {
        filter: Filter::None,
        ..GossipProtocol::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, GossipConfig};

    #[test]
    fn presets_are_distinct_points() {
        let set: std::collections::HashSet<usize> = [random_push(), reciprocal(), lazy(), silent()]
            .iter()
            .map(GossipProtocol::index)
            .collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn lazy_underperforms_baseline() {
        let cfg = GossipConfig::default();
        let mean = |p: GossipProtocol| {
            let u = run(&[p], &vec![0; cfg.nodes], &cfg, 3);
            u.iter().sum::<f64>() / u.len() as f64
        };
        assert!(mean(lazy()) < mean(random_push()));
    }

    #[test]
    fn silent_is_the_floor() {
        let cfg = GossipConfig::default();
        let u = run(&[silent()], &vec![0; cfg.nodes], &cfg, 4);
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        // Only injections reach anyone.
        assert!(mean < 4.0);
    }
}
