//! Integration tests of the population-dynamics subsystem against the
//! real domains: the `run_mixed` degeneracy contracts, thread-count
//! invariance of the payoff matrix and the ESS classification, and the
//! evo cache's self-invalidation (without disturbing plain PRA or attack
//! caches).

use dsa_core::cache::DomainSweep;
use dsa_core::domain::{DynDomain, Effort};
use dsa_core::pra::PraConfig;
use dsa_core::tournament::OpponentSampling;
use dsa_evolution::analysis::{analyze, default_candidates};
use dsa_evolution::payoff::{empirical_matrix, EvoConfig};
use dsa_evolution::sweep::EvoSweep;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn rep() -> Arc<dyn DynDomain> {
    dsa_reputation::adapter::register()
}

fn gossip() -> Arc<dyn DynDomain> {
    dsa_gossip::adapter::register()
}

fn cfg() -> EvoConfig {
    EvoConfig {
        encounter_runs: 1,
        threads: 1,
        seed: 0x5EED,
        basin_samples: 8,
        moran_trials: 50,
        ..EvoConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsa-evo-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn payoff_matrix_diagonal_is_the_homogeneous_run_for_every_domain() {
    // The diagonal cell hosts a single protocol, and run_mixed's one-
    // group contract makes it the plain homogeneous utility bit for bit
    // — natively (rep) and through the pairwise fallback (gossip).
    for domain in [rep(), gossip()] {
        let candidates = &default_candidates(&*domain)[..2];
        let config = cfg();
        let m = empirical_matrix(&*domain, candidates, Effort::Smoke, &config);
        let root = dsa_workloads::seeds::SeedSeq::new(config.seed).child(0xE701);
        for (i, &c) in candidates.iter().enumerate() {
            let seed = root.child(c as u64).child(c as u64).child(0).seed();
            assert_eq!(
                m.payoff[i][i],
                domain.run_homogeneous(c, Effort::Smoke, seed),
                "{} diagonal {i}",
                domain.name()
            );
        }
    }
}

#[test]
fn payoff_matrix_is_bit_identical_across_thread_counts_and_orderings() {
    let domain = rep();
    let candidates = default_candidates(&*domain);
    let mut one = cfg();
    one.threads = 1;
    let mut eight = cfg();
    eight.threads = 8;
    let a = empirical_matrix(&*domain, &candidates, Effort::Smoke, &one);
    let b = empirical_matrix(&*domain, &candidates, Effort::Smoke, &eight);
    assert_eq!(a.payoff, b.payoff, "1 vs 8 threads");

    // ESS classification — the downstream consumer — is identical too.
    assert_eq!(analyze(&a, &one), analyze(&b, &eight));

    // Reversing the candidate set permutes the matrix without changing
    // any measured value (cell seeds derive from protocol indices).
    let reversed: Vec<usize> = candidates.iter().rev().copied().collect();
    let r = empirical_matrix(&*domain, &reversed, Effort::Smoke, &one);
    let k = candidates.len();
    for i in 0..k {
        for j in 0..k {
            assert_eq!(r.payoff[k - 1 - i][k - 1 - j], a.payoff[i][j], "({i},{j})");
        }
    }
}

#[test]
fn evo_cache_roundtrips_and_self_invalidates() {
    let dir = temp_dir("cache");
    let domain = gossip();
    let candidates = default_candidates(&*domain);
    let config = cfg();
    let fresh =
        EvoSweep::load_or_compute(&*domain, &candidates, Effort::Smoke, &config, "smoke", &dir)
            .unwrap();
    assert!(!fresh.from_cache);
    assert!(dir.join("evo-gossip-smoke.csv").exists());
    let cached =
        EvoSweep::load_or_compute(&*domain, &candidates, Effort::Smoke, &config, "smoke", &dir)
            .unwrap();
    assert!(cached.from_cache);
    assert_eq!(cached.matrix.payoff, fresh.matrix.payoff);
    assert_eq!(cached.matrix.names, fresh.matrix.names);

    // A changed candidate set recomputes, not trusts.
    let fewer = &candidates[..candidates.len() - 1];
    let smaller =
        EvoSweep::load_or_compute(&*domain, fewer, Effort::Smoke, &config, "smoke", &dir).unwrap();
    assert!(!smaller.from_cache, "candidate-set change must recompute");

    // A changed dynamics parameter recomputes even though the matrix
    // numbers would not move (the fingerprint covers the whole config).
    let mut dynamics = config.clone();
    dynamics.mutant_share = 0.10;
    let redone = EvoSweep::load_or_compute(
        &*domain,
        &candidates,
        Effort::Smoke,
        &dynamics,
        "smoke",
        &dir,
    )
    .unwrap();
    assert!(!redone.from_cache, "dynamics change must recompute");

    // A changed seed recomputes.
    let mut reseeded = config;
    reseeded.seed ^= 1;
    let new_seed = EvoSweep::load_or_compute(
        &*domain,
        &candidates,
        Effort::Smoke,
        &reseeded,
        "smoke",
        &dir,
    )
    .unwrap();
    assert!(!new_seed.from_cache, "seed change must recompute");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evo_reconfiguration_leaves_pra_and_attack_caches_untouched() {
    let dir = temp_dir("isolation");
    let domain = gossip();
    let pra_cfg = PraConfig {
        performance_runs: 1,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(2),
        threads: 1,
        seed: 3,
        ..PraConfig::default()
    };
    let pra =
        DomainSweep::load_or_compute(&*domain, Effort::Smoke, &pra_cfg, "smoke", &dir).unwrap();
    assert!(!pra.from_cache);

    let model = dsa_attacks::models::Sybil::default();
    let attack_cfg = dsa_attacks::AttackConfig {
        budgets: vec![0.1, 0.5],
        encounter_runs: 1,
        threads: 1,
        seed: 3,
    };
    let attack = dsa_attacks::AttackSweep::load_or_compute(
        &*domain,
        &model,
        Effort::Smoke,
        &attack_cfg,
        "smoke",
        &dir,
    )
    .unwrap();
    assert!(!attack.from_cache);

    // Run the evo sweep twice under different configurations: the evo
    // cache churns, the PRA and attack stamps keep validating.
    let candidates = default_candidates(&*domain);
    for mutant_share in [0.05, 0.25] {
        let config = EvoConfig {
            mutant_share,
            ..cfg()
        };
        let evo =
            EvoSweep::load_or_compute(&*domain, &candidates, Effort::Smoke, &config, "smoke", &dir)
                .unwrap();
        assert!(!evo.from_cache);
    }
    let pra_again =
        DomainSweep::load_or_compute(&*domain, Effort::Smoke, &pra_cfg, "smoke", &dir).unwrap();
    assert!(pra_again.from_cache, "PRA stamp must stay valid");
    let attack_again = dsa_attacks::AttackSweep::load_or_compute(
        &*domain,
        &model,
        Effort::Smoke,
        &attack_cfg,
        "smoke",
        &dir,
    )
    .unwrap();
    assert!(attack_again.from_cache, "attack stamp must stay valid");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `run_mixed` with a single protocol group reproduces the plain
    /// homogeneous utility bit for bit, for any candidate and seed —
    /// natively (rep/swarm) and through the fallback (gossip).
    #[test]
    fn mixed_single_group_reproduces_homogeneous(c in 0usize..108, seed in 0u64..1000) {
        let domain = gossip();
        let n = domain.population(Effort::Smoke);
        let mixed = domain.run_mixed(&[(c, n)], Effort::Smoke, seed);
        prop_assert_eq!(mixed, vec![domain.run_homogeneous(c, Effort::Smoke, seed)]);
    }

    /// `run_mixed` with two groups reproduces the plain `run_encounter`
    /// utility bit for bit at the groups' count ratio.
    #[test]
    fn mixed_pair_reproduces_run_encounter(
        a in 0usize..288,
        b in 0usize..288,
        count_a in 1usize..16,
        seed in 0u64..1000,
    ) {
        let domain = rep();
        let n = domain.population(Effort::Smoke);
        prop_assume!(count_a < n);
        let mixed = domain.run_mixed(&[(a, count_a), (b, n - count_a)], Effort::Smoke, seed);
        let fraction = count_a as f64 / n as f64;
        let (ua, ub) = domain.run_encounter(a, b, fraction, Effort::Smoke, seed);
        prop_assert_eq!(mixed, vec![ua, ub]);
    }
}
