//! Empirical payoff matrices over a domain's candidate protocols.
//!
//! `payoff[i][j]` is the simulated mean utility of a peer running
//! candidate `i` in a population evenly split between candidates `i` and
//! `j` (the diagonal is the homogeneous run) — the bridge from a domain
//! simulator to the matrix-game form the replicator/Moran primitives in
//! [`dsa_gametheory::evolution`] consume. Cells are measured through the
//! [`DynDomain::run_mixed`] population hook, in parallel over the upper
//! triangle with per-thread scratch buffers, and every cell derives its
//! seeds from the *protocol indices* it hosts — so the matrix is
//! bit-identical across thread counts and stable under candidate-set
//! reordering.

use dsa_core::domain::{DynDomain, Effort};
use dsa_core::parallel::parallel_map_indexed_scratch;
use dsa_core::sim::split_population;
use dsa_workloads::seeds::SeedSeq;

/// Seed-tree phase tag separating the evolution streams from the PRA
/// (plain) and 0xA77A (attack) phases run under the same master seed.
const EVO_PHASE: u64 = 0xE701;

/// Configuration of a population-dynamics experiment: how the payoff
/// matrix is measured and how the dynamics on top of it are run. Every
/// field except `threads` is part of the cache fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct EvoConfig {
    /// Simulation runs averaged per matrix cell.
    pub encounter_runs: usize,
    /// Worker threads (0 = all cores). Not fingerprinted: results are
    /// bit-identical across thread counts.
    pub threads: usize,
    /// Master seed; matrix and dynamics are a pure function of it.
    pub seed: u64,
    /// Invading mutant share for the ESS classification (the paper-sized
    /// default: 5%).
    pub mutant_share: f64,
    /// Replicator step budget for rest-point convergence.
    pub max_steps: usize,
    /// Max-norm step change below which the dynamic counts as converged.
    pub tolerance: f64,
    /// Initial mixtures sampled for the basin-of-attraction analysis.
    pub basin_samples: usize,
    /// Monte-Carlo trials per finite-population fixation estimate.
    pub moran_trials: usize,
}

impl Default for EvoConfig {
    fn default() -> Self {
        Self {
            encounter_runs: 2,
            threads: 0,
            seed: 0x5EED,
            mutant_share: 0.05,
            max_steps: 2000,
            tolerance: 1e-9,
            basin_samples: 64,
            moran_trials: 200,
        }
    }
}

impl EvoConfig {
    /// The stable textual fingerprint of everything in this configuration
    /// that the numbers depend on (threads excluded), against a candidate
    /// set and population size — the `evo=` stamp component.
    #[must_use]
    pub fn signature(&self, candidates: &[usize], population: usize) -> String {
        format!(
            "evo candidates={candidates:?} pop={population} enc_runs={} mutant={} steps={} tol={} basins={} moran={}",
            self.encounter_runs,
            self.mutant_share,
            self.max_steps,
            self.tolerance,
            self.basin_samples,
            self.moran_trials
        )
    }
}

/// An empirical `k × k` payoff matrix over a candidate protocol set.
#[derive(Debug, Clone, PartialEq)]
pub struct PayoffMatrix {
    /// Flat space indices of the candidates, in matrix order.
    pub candidates: Vec<usize>,
    /// Display codes of the candidates, in matrix order.
    pub names: Vec<String>,
    /// `payoff[i][j]`: mean utility of candidate `i`'s group against
    /// candidate `j` (diagonal: homogeneous population of `i`).
    pub payoff: Vec<Vec<f64>>,
    /// The population size each cell's simulation hosted.
    pub population: usize,
}

impl PayoffMatrix {
    /// Number of candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the candidate set is empty (never true for a measured
    /// matrix).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Measures the empirical payoff matrix of `candidates` on a domain.
///
/// Each cell simulates an even two-candidate split of the domain's
/// population (`cfg.encounter_runs` times, averaged); the diagonal is the
/// homogeneous run. The upper triangle is computed in parallel — one
/// task per unordered pair, reusing a per-thread groups buffer — and
/// mirrored, so `payoff[i][j]` and `payoff[j][i]` come from the *same*
/// simulations.
///
/// Traced as an `evo.matrix` span; with metrics enabled, each cell's
/// latency lands in the `evo.cell_ns` histogram and the matrix build's
/// throughput in the `evo.cells_per_sec` gauge.
///
/// # Panics
///
/// Panics when `candidates` is empty or a candidate index is outside the
/// domain's space.
#[must_use]
pub fn empirical_matrix(
    domain: &dyn DynDomain,
    candidates: &[usize],
    effort: Effort,
    cfg: &EvoConfig,
) -> PayoffMatrix {
    assert!(!candidates.is_empty(), "empty candidate set");
    for &c in candidates {
        assert!(
            c < domain.size(),
            "candidate {c} outside the {} space (0..{})",
            domain.name(),
            domain.size()
        );
    }
    let _matrix_span = dsa_obs::span("evo.matrix");
    let started = dsa_obs::metrics_enabled().then(std::time::Instant::now);
    let k = candidates.len();
    let population = domain.population(effort).max(2);
    let runs = cfg.encounter_runs.max(1);
    let root = SeedSeq::new(cfg.seed).child(EVO_PHASE);

    // Upper-triangle task list (diagonal included), row-major.
    let tasks: Vec<(usize, usize)> = (0..k).flat_map(|i| (i..k).map(move |j| (i, j))).collect();
    let cells: Vec<(f64, f64)> =
        parallel_map_indexed_scratch(tasks.len(), cfg.threads, Vec::new, |groups, t| {
            let t0 = dsa_obs::metrics_enabled().then(std::time::Instant::now);
            let (i, j) = tasks[t];
            let (pi, pj) = (candidates[i], candidates[j]);
            // Canonical group order (and seeds) by protocol index, so a
            // reordered candidate set measures identical numbers.
            let (lo, hi) = if pi <= pj { (pi, pj) } else { (pj, pi) };
            let node = root.child(lo as u64).child(hi as u64);
            let mut acc = (0.0f64, 0.0f64);
            for r in 0..runs {
                let seed = node.child(r as u64).seed();
                groups.clear();
                let (u_lo, u_hi) = if i == j {
                    groups.push((lo, population));
                    let u = domain.run_mixed(groups, effort, seed);
                    (u[0], u[0])
                } else {
                    let (count_lo, _) = split_population(population, 0.5);
                    groups.push((lo, count_lo));
                    groups.push((hi, population - count_lo));
                    let u = domain.run_mixed(groups, effort, seed);
                    (u[0], u[1])
                };
                if pi <= pj {
                    acc.0 += u_lo;
                    acc.1 += u_hi;
                } else {
                    acc.0 += u_hi;
                    acc.1 += u_lo;
                }
            }
            if let Some(t0) = t0 {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                dsa_obs::observe("evo.cell_ns", ns);
            }
            (acc.0 / runs as f64, acc.1 / runs as f64)
        });
    if let Some(started) = started {
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            dsa_obs::gauge_set("evo.cells_per_sec", tasks.len() as f64 / secs);
        }
    }

    let mut payoff = vec![vec![0.0f64; k]; k];
    for (&(i, j), &(ui, uj)) in tasks.iter().zip(&cells) {
        payoff[i][j] = ui;
        payoff[j][i] = uj;
    }
    PayoffMatrix {
        candidates: candidates.to_vec(),
        names: candidates.iter().map(|&c| domain.code(c)).collect(),
        payoff,
        population,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_fingerprints_candidates_and_dynamics() {
        let cfg = EvoConfig::default();
        let base = cfg.signature(&[1, 2, 3], 24);
        assert_ne!(base, cfg.signature(&[1, 2, 4], 24));
        assert_ne!(base, cfg.signature(&[1, 2, 3], 32));
        let mut other = cfg.clone();
        other.mutant_share = 0.1;
        assert_ne!(base, other.signature(&[1, 2, 3], 24));
        let mut threads_only = cfg;
        threads_only.threads = 7;
        assert_eq!(base, threads_only.signature(&[1, 2, 3], 24));
    }
}
