//! Evolutionary analysis of an empirical payoff matrix: ESS
//! classification, basin-of-attraction sampling, finite-population
//! invasion probabilities and the evolutionary price of anarchy.

use crate::payoff::{EvoConfig, PayoffMatrix};
use dsa_core::domain::DynDomain;
use dsa_gametheory::evolution::{converge, invasion_fixation};
use dsa_workloads::seeds::SeedSeq;

/// Seed-tree phase tags for the two stochastic analyses (separating them
/// from each other and from the matrix-measurement stream).
const BASIN_PHASE: u64 = 0xBA51;
const MORAN_PHASE: u64 = 0x40AA;

/// A rest point counts as a candidate's basin when it holds at least
/// this share there.
const ATTRACTOR_SHARE: f64 = 0.95;

/// The default candidate set of a domain: its named presets followed by
/// its canonical attackers, deduplicated in that order — the protocols a
/// mixed population plausibly fields.
#[must_use]
pub fn default_candidates(domain: &dyn DynDomain) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for (_, i) in domain.presets().into_iter().chain(domain.attackers()) {
        if !out.contains(&i) {
            out.push(i);
        }
    }
    if out.is_empty() {
        out.push(0);
    }
    out
}

/// Mean population payoff (welfare) of a strategy mix under a payoff
/// matrix: `xᵀ A x`.
#[must_use]
pub fn welfare(payoff: &[Vec<f64>], shares: &[f64]) -> f64 {
    shares
        .iter()
        .enumerate()
        .map(|(i, &si)| {
            si * shares
                .iter()
                .enumerate()
                .map(|(j, &sj)| payoff[i][j] * sj)
                .sum::<f64>()
        })
        .sum()
}

/// Whether candidate `i` resists a `cfg.mutant_share` invasion by
/// candidate `j` (converged mutant share strictly below the initial
/// share). Neutral invaders — equal payoffs — drift rather than shrink,
/// so they are *not* resisted, matching the strict ESS condition.
#[must_use]
pub fn resists_invasion(payoff: &[Vec<f64>], i: usize, j: usize, cfg: &EvoConfig) -> bool {
    let k = payoff.len();
    let mut shares = vec![0.0; k];
    shares[i] = 1.0 - cfg.mutant_share;
    shares[j] = cfg.mutant_share;
    let (rest, _) = converge(payoff, &shares, cfg.max_steps, cfg.tolerance);
    rest[j] < cfg.mutant_share - 1e-12
}

/// ESS classification per candidate: `true` when the candidate resists a
/// `cfg.mutant_share` invasion by *every* other candidate in the set.
#[must_use]
pub fn ess_flags(payoff: &[Vec<f64>], cfg: &EvoConfig) -> Vec<bool> {
    let k = payoff.len();
    (0..k)
        .map(|i| (0..k).all(|j| j == i || resists_invasion(payoff, i, j, cfg)))
        .collect()
}

/// One SeedSeq-derived point, uniform on the `k`-simplex (normalized
/// exponentials).
fn simplex_sample(node: &SeedSeq, k: usize) -> Vec<f64> {
    let mut rng = node.rng();
    let draws: Vec<f64> = (0..k)
        .map(|_| {
            let exp = -(1.0 - rng.next_f64()).ln();
            exp.max(1e-300)
        })
        .collect();
    let total: f64 = draws.iter().sum();
    draws.iter().map(|d| d / total).collect()
}

/// The full evolutionary analysis of one empirical payoff matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EvoAnalysis {
    /// Per-candidate ESS flag (resists 5%-mutant invasion by every other
    /// candidate).
    pub ess: Vec<bool>,
    /// Per-candidate basin share: the fraction of sampled initial
    /// mixtures whose rest point concentrates (≥ 95%) on the candidate.
    pub basin_share: Vec<f64>,
    /// Share of sampled mixtures resting at no single candidate (mixed or
    /// interior rest points).
    pub mixed_share: f64,
    /// Per-candidate finite-population fixation probability of one
    /// candidate mutant invading the welfare-best resident (neutral
    /// benchmark: `1 / population`).
    pub fixation: Vec<f64>,
    /// Matrix position of the welfare-best (highest homogeneous payoff)
    /// candidate — the Moran resident and the PoA denominator.
    pub optimum: usize,
    /// Basin-weighted mean welfare at the sampled rest points.
    pub rest_welfare_mean: f64,
    /// Worst sampled rest-point welfare.
    pub rest_welfare_min: f64,
    /// The welfare-optimal homogeneous payoff (`max_i payoff[i][i]`).
    pub max_welfare: f64,
    /// Evolutionary price of anarchy: basin-weighted rest welfare over
    /// the optimum (1 = evolution finds the optimum; 0 = total collapse).
    pub poa: f64,
    /// Worst-case variant: minimum rest welfare over the optimum.
    pub poa_worst: f64,
}

impl EvoAnalysis {
    /// Share of candidates classified as ESS.
    #[must_use]
    pub fn ess_share(&self) -> f64 {
        if self.ess.is_empty() {
            return 0.0;
        }
        self.ess.iter().filter(|&&e| e).count() as f64 / self.ess.len() as f64
    }

    /// The per-candidate classification table (name, ESS flag, basin
    /// share, fixation probability, homogeneous payoff) — the one
    /// rendering shared by the `dsa <domain> evolve ess` CLI and the
    /// `experiments evolution` figure.
    #[must_use]
    pub fn candidate_table(&self, matrix: &PayoffMatrix) -> String {
        use std::fmt::Write as _;
        let name_w = matrix.names.iter().map(String::len).max().unwrap_or(8);
        let mut out = format!(
            "{:<name_w$} {:>4} {:>7} {:>9} {:>9}\n",
            "candidate", "ESS", "basin", "fixation", "A[i][i]"
        );
        for i in 0..matrix.len() {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>4} {:>7.3} {:>9.3} {:>9.3}",
                matrix.names[i],
                if self.ess[i] { "yes" } else { "no" },
                self.basin_share[i],
                self.fixation[i],
                matrix.payoff[i][i]
            );
        }
        out
    }

    /// The one-line ESS-share / evolutionary-PoA summary.
    #[must_use]
    pub fn summary_line(&self, matrix: &PayoffMatrix) -> String {
        format!(
            "ESS share {:.3} | evolutionary PoA {:.3} (worst-case {:.3}; optimum {} at welfare {:.3})",
            self.ess_share(),
            self.poa,
            self.poa_worst,
            matrix.names[self.optimum],
            self.max_welfare
        )
    }
}

/// Runs the ESS / basin / fixation / PoA analysis on a measured matrix.
/// Deterministic in `cfg.seed` (basin mixtures and Moran trials both
/// derive from it), and independent of `cfg.threads`.
///
/// # Panics
///
/// Panics when the matrix is empty.
#[must_use]
pub fn analyze(matrix: &PayoffMatrix, cfg: &EvoConfig) -> EvoAnalysis {
    let payoff = &matrix.payoff;
    let k = matrix.len();
    assert!(k > 0, "empty payoff matrix");

    let ess = ess_flags(payoff, cfg);

    let optimum = (0..k)
        .max_by(|&a, &b| payoff[a][a].total_cmp(&payoff[b][b]))
        .expect("k > 0");
    let max_welfare = payoff[optimum][optimum];

    // Basin-of-attraction sampling from SeedSeq-derived mixtures.
    let basin_root = SeedSeq::new(cfg.seed).child(BASIN_PHASE);
    let samples = cfg.basin_samples.max(1);
    let mut basin_hits = vec![0usize; k];
    let mut mixed_hits = 0usize;
    let mut welfare_sum = 0.0f64;
    let mut welfare_min = f64::INFINITY;
    for s in 0..samples {
        let initial = simplex_sample(&basin_root.child(s as u64), k);
        let (rest, _) = converge(payoff, &initial, cfg.max_steps, cfg.tolerance);
        let w = welfare(payoff, &rest);
        welfare_sum += w;
        welfare_min = welfare_min.min(w);
        match rest
            .iter()
            .enumerate()
            .find(|(_, &share)| share >= ATTRACTOR_SHARE)
        {
            Some((i, _)) => basin_hits[i] += 1,
            None => mixed_hits += 1,
        }
    }
    let basin_share: Vec<f64> = basin_hits
        .iter()
        .map(|&h| h as f64 / samples as f64)
        .collect();
    let rest_welfare_mean = welfare_sum / samples as f64;

    // Finite-population invasion of the welfare-best resident. Each
    // pair's trials draw from an RNG derived from the two *protocol
    // indices* (not the candidate position or a shared stream), so a
    // candidate's estimate is stable under extending or reordering the
    // set — the same invariance the payoff matrix provides.
    let n = matrix.population.max(2);
    let moran_root = SeedSeq::new(cfg.seed).child(MORAN_PHASE);
    let fixation: Vec<f64> = (0..k)
        .map(|j| {
            if j == optimum {
                // A "mutant" of the resident protocol is pure drift.
                1.0 / n as f64
            } else {
                let mut rng = moran_root
                    .child(matrix.candidates[optimum] as u64)
                    .child(matrix.candidates[j] as u64)
                    .rng();
                invasion_fixation(payoff, optimum, j, n, cfg.moran_trials.max(1), &mut rng)
            }
        })
        .collect();

    let ratio = |w: f64| {
        if max_welfare.abs() < 1e-12 {
            f64::NAN
        } else {
            w / max_welfare
        }
    };
    EvoAnalysis {
        ess,
        basin_share,
        mixed_share: mixed_hits as f64 / samples as f64,
        fixation,
        optimum,
        rest_welfare_mean,
        rest_welfare_min: welfare_min,
        max_welfare,
        poa: ratio(rest_welfare_mean),
        poa_worst: ratio(welfare_min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A prisoner's-dilemma-shaped matrix: defect (1) is the unique ESS
    /// and drags welfare from 3 down to 1.
    fn pd() -> PayoffMatrix {
        PayoffMatrix {
            candidates: vec![10, 20],
            names: vec!["coop".into(), "defect".into()],
            payoff: vec![vec![3.0, 0.0], vec![5.0, 1.0]],
            population: 20,
        }
    }

    fn cfg() -> EvoConfig {
        EvoConfig {
            seed: 7,
            basin_samples: 16,
            moran_trials: 400,
            ..EvoConfig::default()
        }
    }

    #[test]
    fn pd_defection_is_the_only_ess_and_poa_collapses() {
        let a = analyze(&pd(), &cfg());
        assert_eq!(a.ess, vec![false, true]);
        assert!((a.ess_share() - 0.5).abs() < 1e-12);
        // Every interior mixture flows to all-defect.
        assert_eq!(a.basin_share, vec![0.0, 1.0]);
        assert_eq!(a.mixed_share, 0.0);
        // Optimum is cooperation (welfare 3); evolution rests at 1.
        assert_eq!(a.optimum, 0);
        assert!((a.max_welfare - 3.0).abs() < 1e-12);
        assert!((a.poa - 1.0 / 3.0).abs() < 1e-3, "poa={}", a.poa);
        assert!(a.poa_worst <= a.poa + 1e-12);
        // The defector invades the cooperative resident far above the
        // neutral 1/n benchmark.
        assert!(a.fixation[1] > 1.0 / 20.0, "fixation {:?}", a.fixation);
        assert!((a.fixation[0] - 1.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn coordination_game_splits_the_basin() {
        // Stag hunt: both vertices are attractors with a real boundary.
        let m = PayoffMatrix {
            candidates: vec![0, 1],
            names: vec!["stag".into(), "hare".into()],
            payoff: vec![vec![4.0, 0.0], vec![3.0, 2.0]],
            population: 12,
        };
        let a = analyze(&m, &cfg());
        assert_eq!(a.ess, vec![true, true]);
        assert!(a.basin_share[0] > 0.0 && a.basin_share[1] > 0.0);
        assert!((a.basin_share[0] + a.basin_share[1] + a.mixed_share - 1.0).abs() < 1e-12);
        // Worst rest point (all-hare, welfare 2) vs optimum (4).
        assert!((a.poa_worst - 0.5).abs() < 1e-6, "{}", a.poa_worst);
    }

    #[test]
    fn neutral_invaders_are_not_resisted() {
        let m = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let c = cfg();
        assert!(!resists_invasion(&m, 0, 1, &c));
        assert_eq!(ess_flags(&m, &c), vec![false, false]);
    }

    #[test]
    fn welfare_is_the_quadratic_form() {
        let m = vec![vec![2.0, 0.0], vec![4.0, 1.0]];
        assert!((welfare(&m, &[1.0, 0.0]) - 2.0).abs() < 1e-12);
        assert!((welfare(&m, &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        let mixed = welfare(&m, &[0.5, 0.5]);
        assert!((mixed - (0.25 * (2.0 + 0.0 + 4.0 + 1.0))).abs() < 1e-12);
    }

    #[test]
    fn fixation_estimates_are_stable_under_candidate_extension() {
        // Adding a third candidate must not move the existing pair's
        // fixation estimate: each pair's Moran trials draw from an RNG
        // derived from the two protocol indices, not a shared stream.
        let base = analyze(&pd(), &cfg());
        let extended = PayoffMatrix {
            candidates: vec![10, 20, 30],
            names: vec!["coop".into(), "defect".into(), "third".into()],
            payoff: vec![
                vec![3.0, 0.0, 1.0],
                vec![5.0, 1.0, 1.0],
                vec![1.0, 1.0, 2.0],
            ],
            population: 20,
        };
        let wider = analyze(&extended, &cfg());
        assert_eq!(wider.optimum, 0, "optimum unchanged by the extension");
        assert_eq!(base.fixation[1], wider.fixation[1]);
    }

    #[test]
    fn analysis_is_deterministic_in_the_seed() {
        let a = analyze(&pd(), &cfg());
        let b = analyze(&pd(), &cfg());
        assert_eq!(a, b);
        let mut reseeded = cfg();
        reseeded.seed = 8;
        // Same qualitative answer; the Moran estimates move with the seed.
        let c = analyze(&pd(), &reseeded);
        assert_eq!(a.ess, c.ess);
        assert_ne!(a.fixation[1], c.fixation[1]);
    }
}
