//! Population dynamics over DSA domains — the evolutionary
//! re-quantification of the Robustness axis.
//!
//! The paper's R axis asks whether a protocol resists invasion by
//! deviants, but every sweep in the workspace so far pits exactly two
//! pure strategies against each other per run. This crate asks the
//! question evolutionary game theory actually poses (Feldman et al.'s
//! "evolutionary game-theoretic analysis on a P2P design space", and
//! Mailath's case that equilibrium predictions need dynamic
//! justification — both in the paper's related work):
//!
//! 1. [`payoff`] measures an **empirical payoff matrix** over a candidate
//!    protocol set: a `k × k` cross-table of simulated group utilities,
//!    built through the [`dsa_core::domain::DynDomain::run_mixed`]
//!    population hook (native multi-protocol simulation where the engine
//!    supports it, round-robin pairwise composition everywhere else) —
//!    parallel and bit-identical across thread counts.
//! 2. [`analysis`] feeds that matrix to `dsa_gametheory::evolution`'s
//!    replicator/Moran primitives: **ESS classification** (who resists a
//!    5%-mutant invasion by every other candidate), **basin-of-attraction
//!    sampling** from SeedSeq-derived initial mixtures, finite-population
//!    **invasion (fixation) probabilities**, and the **evolutionary price
//!    of anarchy** — welfare at the dynamics' rest points over the
//!    welfare-optimal protocol's, the Chandan-et-al.-style gap a
//!    per-protocol PRA cube cannot express.
//! 3. [`sweep`] caches the expensive part (the matrix) under the
//!    workspace's stamped-CSV scheme at
//!    `results/evo-<domain>-<scale>.csv`, extending the sweep stamp with
//!    an `evo=` fingerprint (candidate set + dynamics parameters), so a
//!    changed candidate set, dynamics configuration or seed
//!    self-invalidates while plain PRA and attack stamps stay untouched.

pub mod analysis;
pub mod payoff;
pub mod sweep;

pub use analysis::{analyze, default_candidates, EvoAnalysis};
pub use payoff::{empirical_matrix, EvoConfig, PayoffMatrix};
pub use sweep::EvoSweep;
