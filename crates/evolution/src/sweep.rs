//! The stamped-CSV cache for empirical payoff matrices.
//!
//! The matrix is the expensive part of a population-dynamics experiment
//! (`k(k+1)/2` simulated populations × runs); the dynamics on top of it
//! are matrix arithmetic. One matrix caches per (domain, scale) at
//! `results/evo-<domain>-<scale>.csv` under the workspace's stamp scheme
//! ([`dsa_core::cache::SweepKey`]), extended with an `evo=` fingerprint
//! covering the candidate set, the population size and every dynamics
//! parameter: changing any of them — or the domain's space, the simulator
//! scale, the seed — mismatches the stamp and recomputes, never trusts.
//! Plain PRA and attack stamps live in different files under different
//! fingerprint fields, so evo reconfiguration can never invalidate them.

use crate::payoff::{empirical_matrix, EvoConfig, PayoffMatrix};
use dsa_core::cache::{read_stamped, write_stamped, SweepKey};
use dsa_core::domain::{fnv1a, DynDomain, Effort};
use dsa_core::results::{quote_csv, split_csv};
use std::path::{Path, PathBuf};

/// A cached (or freshly measured) payoff matrix with its key and
/// provenance.
#[derive(Debug, Clone)]
pub struct EvoSweep {
    /// The key the matrix was computed (or validated) under.
    pub key: SweepKey,
    /// The measured matrix.
    pub matrix: PayoffMatrix,
    /// Whether this matrix was served from the cache.
    pub from_cache: bool,
}

impl EvoSweep {
    /// The full cache key of a population-dynamics sweep: the plain sweep
    /// key re-stamped with the `evo=` fingerprint (candidate set,
    /// population and dynamics parameters). `len` is the candidate count,
    /// so the body's row count is validated against the stamp.
    #[must_use]
    pub fn key(
        domain: &dyn DynDomain,
        candidates: &[usize],
        scale: &str,
        effort: Effort,
        cfg: &EvoConfig,
    ) -> SweepKey {
        let canon = format!(
            "{}|enc_runs={}",
            domain.sim_signature(effort),
            cfg.encounter_runs
        );
        let evo = cfg.signature(candidates, domain.population(effort).max(2));
        SweepKey {
            domain: domain.name().to_string(),
            space_hash: domain.space_hash(),
            scale: scale.to_string(),
            params: fnv1a(canon.as_bytes()),
            seed: cfg.seed,
            len: candidates.len(),
            attack: 0,
            evo: 0,
            attrib: 0,
        }
        .with_evo(fnv1a(evo.as_bytes()).max(1))
    }

    /// The cache file path for a (domain, scale) pair.
    #[must_use]
    pub fn cache_path(out_dir: &Path, domain: &str, scale: &str) -> PathBuf {
        out_dir.join(format!("evo-{domain}-{scale}.csv"))
    }

    /// This sweep's own cache file path.
    #[must_use]
    pub fn path(&self, out_dir: &Path) -> PathBuf {
        Self::cache_path(out_dir, &self.key.domain, &self.key.scale)
    }

    /// Measures the matrix (no caching).
    ///
    /// # Panics
    ///
    /// Panics when `candidates` is empty or out of range.
    #[must_use]
    pub fn compute(
        domain: &dyn DynDomain,
        candidates: &[usize],
        effort: Effort,
        cfg: &EvoConfig,
        scale: &str,
    ) -> Self {
        Self {
            key: Self::key(domain, candidates, scale, effort, cfg),
            matrix: empirical_matrix(domain, candidates, effort, cfg),
            from_cache: false,
        }
    }

    /// Attempts to load a cached matrix matching `key`. Returns
    /// `Ok(None)` for every "recompute, don't trust" case: missing file,
    /// missing or mismatched stamp (any other candidate set, dynamics
    /// configuration, seed, scale or space), or a body that disagrees
    /// with the expected candidates.
    ///
    /// # Errors
    ///
    /// Returns an error when the stamp matches but the body cannot be
    /// parsed (corruption must surface, not be silently recomputed over).
    pub fn load(
        key: &SweepKey,
        domain: &dyn DynDomain,
        candidates: &[usize],
        effort: Effort,
        out_dir: &Path,
    ) -> Result<Option<Self>, String> {
        let path = Self::cache_path(out_dir, &key.domain, &key.scale);
        let Some(body) = read_stamped(&path, key)? else {
            return Ok(None);
        };
        let (names, payoff) = parse_body(&body, key.len)
            .map_err(|e| format!("corrupt evo cache {}: {e}", path.display()))?;
        // The evo fingerprint already covers the candidate set; a body
        // that disagrees with its own stamp is stale, not trusted.
        let expected: Vec<String> = candidates.iter().map(|&c| domain.code(c)).collect();
        if names != expected {
            return Ok(None);
        }
        Ok(Some(Self {
            key: key.clone(),
            matrix: PayoffMatrix {
                candidates: candidates.to_vec(),
                names,
                payoff,
                population: domain.population(effort).max(2),
            },
            from_cache: true,
        }))
    }

    /// Loads the cached matrix for (domain, scale), or measures and
    /// caches it.
    ///
    /// # Errors
    ///
    /// Returns an error when a matching cache exists but is corrupt, or
    /// the cache cannot be written.
    pub fn load_or_compute(
        domain: &dyn DynDomain,
        candidates: &[usize],
        effort: Effort,
        cfg: &EvoConfig,
        scale: &str,
        out_dir: &Path,
    ) -> Result<Self, String> {
        let key = Self::key(domain, candidates, scale, effort, cfg);
        if let Some(cached) = Self::load(&key, domain, candidates, effort, out_dir)? {
            return Ok(cached);
        }
        let sweep = Self::compute(domain, candidates, effort, cfg, scale);
        sweep.store(out_dir)?;
        Ok(sweep)
    }

    /// Writes the matrix to its cache path via
    /// [`dsa_core::cache::write_stamped`] (atomic temp sibling + rename).
    ///
    /// # Errors
    ///
    /// Returns an error when the directory or file cannot be written.
    pub fn store(&self, out_dir: &Path) -> Result<PathBuf, String> {
        let path = self.path(out_dir);
        write_stamped(&path, &self.key, &self.to_csv())?;
        Ok(path)
    }

    /// The body CSV (no stamp line): one row per cell, row-major. `{}` on
    /// f64 prints the shortest representation that parses back
    /// bit-identically, so cached and fresh matrices never diverge.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("row,col,name,payoff\n");
        for (i, row) in self.matrix.payoff.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                out.push_str(&format!(
                    "{i},{j},{},{value}\n",
                    quote_csv(&self.matrix.names[i])
                ));
            }
        }
        out
    }
}

/// Parses the body CSV back into `(row names, payoff)`.
fn parse_body(body: &str, k: usize) -> Result<(Vec<String>, Vec<Vec<f64>>), String> {
    let mut lines = body.lines();
    let header = lines.next().ok_or("empty body")?;
    if header != "row,col,name,payoff" {
        return Err(format!("unexpected header: {header}"));
    }
    let mut names: Vec<String> = Vec::with_capacity(k);
    let mut payoff: Vec<Vec<f64>> = Vec::with_capacity(k);
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields", lineno + 2));
        }
        let parse_idx = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 2))
        };
        let i = parse_idx(&fields[0], "row")?;
        let j = parse_idx(&fields[1], "col")?;
        if j == 0 {
            if i != payoff.len() {
                return Err(format!("line {}: rows out of order", lineno + 2));
            }
            payoff.push(Vec::with_capacity(k));
            names.push(fields[2].clone());
        }
        let rows = payoff.len();
        let row = payoff
            .last_mut()
            .ok_or_else(|| format!("line {}: cell before the first row started", lineno + 2))?;
        if i + 1 != rows || j != row.len() {
            return Err(format!("line {}: cells out of order", lineno + 2));
        }
        let value: f64 = fields[3]
            .parse()
            .map_err(|e| format!("line {}: bad payoff: {e}", lineno + 2))?;
        row.push(value);
    }
    if payoff.len() != k || payoff.iter().any(|r| r.len() != k) {
        return Err(format!("expected a {k}×{k} matrix"));
    }
    Ok((names, payoff))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake() -> EvoSweep {
        EvoSweep {
            key: SweepKey {
                domain: "toy".into(),
                space_hash: 0xABC,
                scale: "smoke".into(),
                params: 0x123,
                seed: 7,
                len: 2,
                attack: 0,
                evo: 0xE40,
                attrib: 0,
            },
            matrix: PayoffMatrix {
                candidates: vec![3, 5],
                names: vec!["a".into(), "b, with comma".into()],
                payoff: vec![vec![1.0, 0.25], vec![2.5, 0.75]],
                population: 24,
            },
            from_cache: false,
        }
    }

    #[test]
    fn csv_body_roundtrips() {
        let s = fake();
        let (names, payoff) = parse_body(&s.to_csv(), 2).unwrap();
        assert_eq!(names, s.matrix.names);
        assert_eq!(payoff, s.matrix.payoff);
    }

    #[test]
    fn parse_body_rejects_garbage() {
        assert!(parse_body("", 2).is_err());
        assert!(parse_body("wrong,header\n", 2).is_err());
        assert!(parse_body("row,col,name,payoff\n", 2).is_err());
        assert!(parse_body("row,col,name,payoff\n0,0,a,1\n", 2).is_err());
        assert!(parse_body("row,col,name,payoff\n0,1,a,1\n", 1).is_err());
        assert!(parse_body("row,col,name,payoff\n0,0,a,x\n", 1).is_err());
        assert!(parse_body("row,col,name,payoff\n1,0,a,1\n0,0,a,1\n", 1).is_err());
    }

    #[test]
    fn cache_file_name_embeds_domain_and_scale() {
        let s = fake();
        assert_eq!(
            s.path(Path::new("results")),
            PathBuf::from("results/evo-toy-smoke.csv")
        );
    }
}
