//! Per-peer simulator state.

use crate::piece::Bitfield;

/// A leecher's (or the seeder's) full state.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Upload capacity, KiB/s.
    pub upload_capacity: f64,
    /// Piece possession.
    pub bitfield: Bitfield,
    /// Partial progress (KiB) toward each piece.
    pub piece_progress: Vec<f64>,
    /// Currently unchoked peers (indices into the swarm).
    pub unchoked: Vec<usize>,
    /// The current optimistic-unchoke target, if any.
    pub optimistic: Option<usize>,
    /// Bytes (KiB) received from each peer during the current rechoke
    /// window.
    pub window_received: Vec<f64>,
    /// Receive rate (KiB/s) from each peer measured over the last
    /// completed window — the ranking signal.
    pub rate_estimate: Vec<f64>,
    /// Consecutive rechoke windows in which each peer sent us data
    /// (the Loyal ranking signal).
    pub loyalty: Vec<u32>,
    /// Tick at which the download completed (None while leeching).
    pub completed_at: Option<u64>,
    /// Whether the peer has left the swarm.
    pub departed: bool,
}

impl Peer {
    /// Creates a fresh leecher.
    #[must_use]
    pub fn leecher(upload_capacity: f64, pieces: usize, swarm_size: usize) -> Self {
        Self {
            upload_capacity,
            bitfield: Bitfield::empty(pieces),
            piece_progress: vec![0.0; pieces],
            unchoked: Vec::new(),
            optimistic: None,
            window_received: vec![0.0; swarm_size],
            rate_estimate: vec![0.0; swarm_size],
            loyalty: vec![0; swarm_size],
            completed_at: None,
            departed: false,
        }
    }

    /// Creates the seeder.
    #[must_use]
    pub fn seeder(upload_capacity: f64, pieces: usize, swarm_size: usize) -> Self {
        Self {
            bitfield: Bitfield::full(pieces),
            ..Self::leecher(upload_capacity, pieces, swarm_size)
        }
    }

    /// Whether this peer still participates (not departed).
    #[must_use]
    pub fn active(&self) -> bool {
        !self.departed
    }

    /// Whether this peer is a seed (has everything).
    #[must_use]
    pub fn is_seed(&self) -> bool {
        self.bitfield.complete()
    }

    /// Closes a rechoke window: converts window receipts into rate
    /// estimates and loyalty streaks, then clears the window.
    pub fn roll_window(&mut self, window_seconds: f64) {
        for ((rate, received), loyal) in self
            .rate_estimate
            .iter_mut()
            .zip(&mut self.window_received)
            .zip(&mut self.loyalty)
        {
            *rate = *received / window_seconds;
            if *received > 0.0 {
                *loyal += 1;
            } else {
                *loyal = 0;
            }
            *received = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leecher_starts_empty() {
        let p = Peer::leecher(50.0, 20, 51);
        assert_eq!(p.bitfield.count(), 0);
        assert!(!p.is_seed());
        assert!(p.active());
        assert_eq!(p.rate_estimate.len(), 51);
    }

    #[test]
    fn seeder_is_complete() {
        let s = Peer::seeder(128.0, 20, 51);
        assert!(s.is_seed());
        assert!(s.bitfield.complete());
    }

    #[test]
    fn roll_window_computes_rates_and_loyalty() {
        let mut p = Peer::leecher(50.0, 4, 3);
        p.window_received[1] = 100.0;
        p.roll_window(10.0);
        assert_eq!(p.rate_estimate[1], 10.0);
        assert_eq!(p.loyalty[1], 1);
        assert_eq!(p.window_received[1], 0.0);
        // A silent window resets loyalty.
        p.roll_window(10.0);
        assert_eq!(p.loyalty[1], 0);
        assert_eq!(p.rate_estimate[1], 0.0);
    }
}
