//! Per-variant choking algorithms — the §5 client modifications.
//!
//! Each client kind ranks its *interested* neighbors at every rechoke and
//! unchokes the top `regular_slots`; the optimistic unchoke policy also
//! varies (BitTorrent rotates unconditionally, Loyal-When-needed only
//! optimistically unchokes while it has vacant regular slots, Sort-S never
//! does — the B3 "defect on strangers" analogue).

use crate::peer::Peer;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// The client variants evaluated in Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// Reference BitTorrent: fastest-first regular unchokes + periodic
    /// optimistic unchoke.
    BitTorrent,
    /// Birds: reciprocate to peers whose rate is closest to one's own
    /// per-slot upload rate.
    Birds,
    /// Loyal-When-needed: longest-standing cooperators first; optimistic
    /// unchokes only while regular slots are vacant.
    LoyalWhenNeeded,
    /// Sort-S: slowest-first, one regular slot, no optimistic unchokes.
    SortS,
    /// Sort-Random: random regular unchokes (Leong et al.-style).
    RandomRank,
}

impl ClientKind {
    /// All §5 variants.
    pub const ALL: [ClientKind; 5] = [
        ClientKind::BitTorrent,
        ClientKind::Birds,
        ClientKind::LoyalWhenNeeded,
        ClientKind::SortS,
        ClientKind::RandomRank,
    ];

    /// Display name used in figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::BitTorrent => "BitTorrent",
            Self::Birds => "Birds",
            Self::LoyalWhenNeeded => "Loyal-When-needed",
            Self::SortS => "Sort-S",
            Self::RandomRank => "Random",
        }
    }

    /// Number of regular unchoke slots for this variant.
    #[must_use]
    pub fn regular_slots(self, default_slots: usize) -> usize {
        match self {
            Self::SortS => 1,
            _ => default_slots,
        }
    }

    /// Whether this variant runs an optimistic unchoke this rechoke, given
    /// how many regular slots it filled.
    #[must_use]
    pub fn optimistic_allowed(self, filled: usize, regular_slots: usize) -> bool {
        match self {
            Self::SortS => false,
            Self::LoyalWhenNeeded => filled < regular_slots,
            _ => true,
        }
    }

    /// Ranks `interested` peer indices best-first for regular unchokes.
    ///
    /// `me` is the choosing peer (rates, loyalty), `my_slot_rate` its
    /// per-slot upload rate (capacity / slots), used by Birds proximity.
    pub fn rank(
        self,
        me: &Peer,
        my_slot_rate: f64,
        interested: &[usize],
        rng: &mut Xoshiro256pp,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        self.rank_into(
            me,
            my_slot_rate,
            interested,
            rng,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// [`ClientKind::rank`] into a caller-owned buffer. `vals` and
    /// `order` are scratch (contents ignored, clobbered); `out` receives
    /// the full ranking best-first. Bit-identical to [`ClientKind::rank`],
    /// including the RNG stream.
    #[allow(clippy::too_many_arguments)]
    pub fn rank_into(
        self,
        me: &Peer,
        my_slot_rate: f64,
        interested: &[usize],
        rng: &mut Xoshiro256pp,
        vals: &mut Vec<f64>,
        order: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match self {
            Self::BitTorrent => {
                vals.clear();
                vals.extend(interested.iter().map(|&j| me.rate_estimate[j]));
                sampling::rank_indices_into(vals, false, order);
            }
            Self::SortS => {
                vals.clear();
                vals.extend(interested.iter().map(|&j| me.rate_estimate[j]));
                sampling::rank_indices_into(vals, true, order);
            }
            Self::Birds => {
                vals.clear();
                vals.extend(
                    interested
                        .iter()
                        .map(|&j| (me.rate_estimate[j] - my_slot_rate).abs()),
                );
                sampling::rank_indices_into(vals, true, order);
            }
            Self::LoyalWhenNeeded => {
                // Loyalty first; rate breaks loyalty ties.
                vals.clear();
                vals.extend(
                    interested
                        .iter()
                        .map(|&j| f64::from(me.loyalty[j]) * 1e6 + me.rate_estimate[j].min(1e5)),
                );
                sampling::rank_indices_into(vals, false, order);
            }
            Self::RandomRank => {
                order.clear();
                order.extend(0..interested.len());
                sampling::shuffle(order, rng);
            }
        }
        out.extend(order.iter().map(|&i| interested[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer_with_rates(rates: &[f64]) -> Peer {
        let mut p = Peer::leecher(40.0, 4, rates.len());
        p.rate_estimate = rates.to_vec();
        p
    }

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(5)
    }

    #[test]
    fn bittorrent_ranks_fastest_first() {
        let me = peer_with_rates(&[1.0, 9.0, 5.0, 0.0]);
        let ranked = ClientKind::BitTorrent.rank(&me, 10.0, &[0, 1, 2, 3], &mut rng());
        assert_eq!(ranked, vec![1, 2, 0, 3]);
    }

    #[test]
    fn sort_s_ranks_slowest_first_with_one_slot() {
        let me = peer_with_rates(&[1.0, 9.0, 5.0, 0.0]);
        let ranked = ClientKind::SortS.rank(&me, 10.0, &[0, 1, 2, 3], &mut rng());
        assert_eq!(ranked, vec![3, 0, 2, 1]);
        assert_eq!(ClientKind::SortS.regular_slots(3), 1);
        assert!(!ClientKind::SortS.optimistic_allowed(0, 1));
    }

    #[test]
    fn birds_ranks_by_proximity() {
        let me = peer_with_rates(&[1.0, 9.0, 5.0]);
        // My slot rate is 5 → peer 2 (rate 5) is closest.
        let ranked = ClientKind::Birds.rank(&me, 5.0, &[0, 1, 2], &mut rng());
        assert_eq!(ranked[0], 2);
    }

    #[test]
    fn loyal_prefers_streaks_over_rates() {
        let mut me = peer_with_rates(&[9.0, 1.0]);
        me.loyalty = vec![0, 5];
        let ranked = ClientKind::LoyalWhenNeeded.rank(&me, 5.0, &[0, 1], &mut rng());
        assert_eq!(ranked[0], 1);
    }

    #[test]
    fn loyal_when_needed_optimistic_only_when_vacant() {
        assert!(ClientKind::LoyalWhenNeeded.optimistic_allowed(2, 3));
        assert!(!ClientKind::LoyalWhenNeeded.optimistic_allowed(3, 3));
        assert!(ClientKind::BitTorrent.optimistic_allowed(3, 3));
    }

    #[test]
    fn random_is_a_permutation() {
        let me = peer_with_rates(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut r = rng();
        let mut sorted = ClientKind::RandomRank.rank(&me, 5.0, &[0, 1, 2, 3, 4], &mut r);
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            ClientKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ClientKind::ALL.len());
    }
}
