//! Testbed configuration matching the paper's §5 experimental setup.

use dsa_workloads::bandwidth::BandwidthDist;

/// Parameters of a swarm experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BtConfig {
    /// Number of leechers (paper: 50).
    pub leechers: usize,
    /// Seeder upload capacity in KiB/s (paper: 128 KBps).
    pub seed_upload: f64,
    /// File size in KiB (paper: 5 MB).
    pub file_kib: f64,
    /// Piece size in KiB (BitTorrent default: 256 KiB).
    pub piece_kib: f64,
    /// Regular unchoke slots per leecher (BitTorrent default: 3).
    pub regular_slots: usize,
    /// Rechoke period in ticks/seconds (BitTorrent default: 10).
    pub rechoke_period: u64,
    /// Optimistic-unchoke rotation period (BitTorrent default: 30).
    pub optimistic_period: u64,
    /// Leecher upload capacities (paper: Piatek et al.).
    pub bandwidth: BandwidthDist,
    /// Whether completed leechers depart immediately (paper: yes).
    pub leave_on_completion: bool,
    /// Hard simulation cap in ticks, to bound degenerate swarms.
    pub max_ticks: u64,
}

impl Default for BtConfig {
    fn default() -> Self {
        Self {
            leechers: 50,
            seed_upload: 128.0,
            file_kib: 5.0 * 1024.0,
            piece_kib: 256.0,
            regular_slots: 3,
            rechoke_period: 10,
            optimistic_period: 30,
            bandwidth: BandwidthDist::Piatek,
            leave_on_completion: true,
            max_ticks: 3600,
        }
    }
}

impl BtConfig {
    /// Number of pieces in the file.
    #[must_use]
    pub fn pieces(&self) -> usize {
        (self.file_kib / self.piece_kib).ceil() as usize
    }

    /// A reduced configuration for unit tests (small file, few peers).
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            leechers: 8,
            seed_upload: 64.0,
            file_kib: 512.0,
            piece_kib: 64.0,
            max_ticks: 1200,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = BtConfig::default();
        assert_eq!(c.leechers, 50);
        assert_eq!(c.pieces(), 20);
        assert_eq!(c.seed_upload, 128.0);
    }

    #[test]
    fn pieces_round_up() {
        let c = BtConfig {
            file_kib: 100.0,
            piece_kib: 64.0,
            ..BtConfig::default()
        };
        assert_eq!(c.pieces(), 2);
    }

    #[test]
    fn tiny_is_consistent() {
        let c = BtConfig::tiny();
        assert_eq!(c.pieces(), 8);
        assert!(c.leechers >= 2);
    }
}
