//! The §5 experiments: mixed-fraction encounters (Figure 9) and
//! homogeneous performance comparisons (Figure 10).

use crate::choker::ClientKind;
use crate::config::BtConfig;
use crate::swarm::simulate;
use dsa_stats::ci::ConfidenceInterval;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;
use dsa_workloads::seeds::SeedSeq;

/// One point of a Figure 9 curve: the mean download time (with 95% CI)
/// of each client group at a given mixing fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct MixPoint {
    /// Fraction of leechers running client A.
    pub fraction_a: f64,
    /// Download-time statistics of the A group (`None` when absent).
    pub a: Option<ConfidenceInterval>,
    /// Download-time statistics of the B group (`None` when absent).
    pub b: Option<ConfidenceInterval>,
}

/// Runs one mixed swarm `runs` times and returns each group's per-run
/// mean download times.
///
/// Client kinds are shuffled over leecher slots each run so that neither
/// group systematically receives the faster capacity draws.
pub fn mixed_runs(
    a: ClientKind,
    b: ClientKind,
    fraction_a: f64,
    runs: usize,
    config: &BtConfig,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let n = config.leechers;
    let count_a = ((fraction_a * n as f64).round() as usize).min(n);
    let root = SeedSeq::new(seed);
    let mut times_a = Vec::new();
    let mut times_b = Vec::new();
    for r in 0..runs {
        let node = root.child(r as u64);
        let mut kinds: Vec<ClientKind> = (0..n).map(|i| if i < count_a { a } else { b }).collect();
        let mut shuffle_rng: Xoshiro256pp = node.child(0).rng();
        sampling::shuffle(&mut kinds, &mut shuffle_rng);
        let out = simulate(&kinds, config, node.child(1).seed());
        if count_a > 0 {
            times_a.push(out.mean_download_time(Some(a)));
        }
        if count_a < n {
            times_b.push(out.mean_download_time(Some(b)));
        }
    }
    (times_a, times_b)
}

/// Produces a full Figure 9-style series over the paper's mixing
/// fractions {0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}.
pub fn fraction_series(
    a: ClientKind,
    b: ClientKind,
    runs: usize,
    config: &BtConfig,
    seed: u64,
) -> Vec<MixPoint> {
    let fractions = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
    fractions
        .iter()
        .enumerate()
        .map(|(fi, &f)| {
            let (ta, tb) = mixed_runs(
                a,
                b,
                f,
                runs,
                config,
                SeedSeq::new(seed).child(fi as u64).seed(),
            );
            MixPoint {
                fraction_a: f,
                a: (!ta.is_empty()).then(|| ConfidenceInterval::ci95(&ta)),
                b: (!tb.is_empty()).then(|| ConfidenceInterval::ci95(&tb)),
            }
        })
        .collect()
}

/// Homogeneous mean download times per run (Figure 10 bars).
pub fn homogeneous_runs(kind: ClientKind, runs: usize, config: &BtConfig, seed: u64) -> Vec<f64> {
    let (times, _) = mixed_runs(kind, kind, 1.0, runs, config, seed);
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_workloads::bandwidth::BandwidthDist;

    fn cfg() -> BtConfig {
        BtConfig {
            bandwidth: BandwidthDist::Constant(32.0),
            ..BtConfig::tiny()
        }
    }

    #[test]
    fn mixed_runs_partition_population() {
        let (a, b) = mixed_runs(ClientKind::Birds, ClientKind::BitTorrent, 0.5, 3, &cfg(), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        assert!(a.iter().chain(&b).all(|t| *t > 0.0));
    }

    #[test]
    fn extreme_fractions_have_one_empty_group() {
        let (a, b) = mixed_runs(ClientKind::Birds, ClientKind::BitTorrent, 0.0, 2, &cfg(), 2);
        assert!(a.is_empty());
        assert_eq!(b.len(), 2);
        let (a, b) = mixed_runs(ClientKind::Birds, ClientKind::BitTorrent, 1.0, 2, &cfg(), 3);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn fraction_series_covers_paper_fractions() {
        let series = fraction_series(ClientKind::Birds, ClientKind::BitTorrent, 2, &cfg(), 4);
        assert_eq!(series.len(), 7);
        assert_eq!(series[0].fraction_a, 0.0);
        assert!(series[0].a.is_none());
        assert!(series[6].b.is_none());
        for p in &series[1..6] {
            assert!(p.a.is_some() && p.b.is_some());
        }
    }

    #[test]
    fn homogeneous_runs_are_deterministic() {
        let x = homogeneous_runs(ClientKind::SortS, 2, &cfg(), 5);
        let y = homogeneous_runs(ClientKind::SortS, 2, &cfg(), 5);
        assert_eq!(x, y);
        assert_eq!(x.len(), 2);
    }
}
