//! The tick loop: choking, transfers, piece completion, departures.

use crate::choker::ClientKind;
use crate::config::BtConfig;
use crate::peer::Peer;
use crate::piece::rarest_first;
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;

/// Result of one swarm run.
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmOutcome {
    /// Completion tick per leecher (`None` = did not finish before
    /// `max_ticks`).
    pub completion_ticks: Vec<Option<u64>>,
    /// Client kind per leecher.
    pub kinds: Vec<ClientKind>,
    /// Ticks simulated.
    pub ticks_elapsed: u64,
}

impl SwarmOutcome {
    /// Download times (seconds) of leechers of `kind` (all leechers if
    /// `None`); unfinished leechers count as the elapsed horizon, which
    /// biases *against* protocols that starve peers — the conservative
    /// choice for the Figures 9–10 comparisons.
    #[must_use]
    pub fn download_times(&self, kind: Option<ClientKind>) -> Vec<f64> {
        self.completion_ticks
            .iter()
            .zip(&self.kinds)
            .filter(|(_, k)| kind.is_none_or(|want| **k == want))
            .map(|(t, _)| t.unwrap_or(self.ticks_elapsed) as f64)
            .collect()
    }

    /// Mean download time for a client kind.
    #[must_use]
    pub fn mean_download_time(&self, kind: Option<ClientKind>) -> f64 {
        dsa_stats::describe::mean(&self.download_times(kind))
    }

    /// Whether every leecher finished.
    #[must_use]
    pub fn all_completed(&self) -> bool {
        self.completion_ticks.iter().all(Option::is_some)
    }
}

/// Reusable working memory for [`simulate_with_scratch`]: every buffer
/// the tick loop would otherwise allocate per peer per tick. After one
/// warm run at a given size, subsequent runs through the same scratch
/// perform zero steady-state heap allocations per tick (the per-run
/// [`Peer`] table is setup, not steady state). Every buffer is
/// re-initialized before use, so a dirty scratch is bit-identical to a
/// fresh one.
#[derive(Debug, Default)]
pub struct BtScratch {
    /// Peers interested in the chooser this rechoke.
    interested: Vec<usize>,
    /// Full best-first ranking of `interested`.
    ranked: Vec<usize>,
    /// [`ClientKind::rank_into`] scratch: scores and rank order.
    vals: Vec<f64>,
    order: Vec<usize>,
    /// Optimistic-unchoke candidate pool.
    pool: Vec<usize>,
    /// Active incomplete leechers (seeder round-robin).
    wanting: Vec<usize>,
    /// Seeder's chosen unchokes this rechoke.
    chosen: Vec<usize>,
    /// One giver's transfer targets this tick.
    targets: Vec<usize>,
    /// Leechers that finished this tick.
    newly_complete: Vec<usize>,
    /// Per-receiver in-progress-piece flags.
    in_flight: Vec<bool>,
    /// availability[p] = number of active peers holding piece p.
    availability: Vec<u32>,
}

impl BtScratch {
    /// Heap bytes held by the arena: every buffer's capacity times its
    /// element size. Monotone across runs through one scratch —
    /// published as the `mem.arena.btsim_bytes` high-water gauge.
    #[must_use]
    pub fn footprint(&self) -> usize {
        use dsa_obs::mem::vec_bytes;
        vec_bytes(&self.interested)
            + vec_bytes(&self.ranked)
            + vec_bytes(&self.vals)
            + vec_bytes(&self.order)
            + vec_bytes(&self.pool)
            + vec_bytes(&self.wanting)
            + vec_bytes(&self.chosen)
            + vec_bytes(&self.targets)
            + vec_bytes(&self.newly_complete)
            + vec_bytes(&self.in_flight)
            + vec_bytes(&self.availability)
    }
}

/// Simulates one swarm: `kinds[i]` is leecher `i`'s client; one seeder
/// (index `kinds.len()`) serves round-robin. Deterministic in `seed`.
/// Traced as a `btsim.run` span with `btsim.{setup,rounds,payoff}` phase
/// children when tracing is on.
///
/// Thin wrapper over [`simulate_with_scratch`] using a thread-local
/// [`BtScratch`], so callers that loop over runs on one thread reuse one
/// arena per thread.
///
/// # Panics
///
/// Panics if `kinds.len() != config.leechers` or the configuration is
/// degenerate.
pub fn simulate(kinds: &[ClientKind], config: &BtConfig, seed: u64) -> SwarmOutcome {
    thread_local! {
        static SCRATCH: std::cell::RefCell<BtScratch> =
            std::cell::RefCell::new(BtScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => simulate_with_scratch(kinds, config, seed, &mut scratch),
        // Re-entrant call on this thread: fall back to a fresh scratch
        // rather than aliasing the one already borrowed.
        Err(_) => simulate_with_scratch(kinds, config, seed, &mut BtScratch::default()),
    })
}

/// [`simulate`] against a caller-owned [`BtScratch`]. Output is
/// bit-identical to [`simulate`] regardless of the scratch's prior
/// contents.
///
/// # Panics
///
/// Panics if `kinds.len() != config.leechers` or the configuration is
/// degenerate.
pub fn simulate_with_scratch(
    kinds: &[ClientKind],
    config: &BtConfig,
    seed: u64,
    scratch: &mut BtScratch,
) -> SwarmOutcome {
    let n = config.leechers;
    assert_eq!(kinds.len(), n, "one client kind per leecher");
    assert!(n >= 2, "need at least two leechers");
    let pieces = config.pieces();
    assert!(pieces >= 1, "file must have at least one piece");

    let _run_span = dsa_obs::span("btsim.run");
    let setup_span = dsa_obs::span("btsim.setup");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let swarm_size = n + 1;
    let seeder = n;

    let mut peers: Vec<Peer> = (0..n)
        .map(|_| Peer::leecher(config.bandwidth.sample(&mut rng), pieces, swarm_size))
        .collect();
    peers.push(Peer::seeder(config.seed_upload, pieces, swarm_size));

    let BtScratch {
        interested,
        ranked,
        vals,
        order,
        pool,
        wanting,
        chosen,
        targets,
        newly_complete,
        in_flight,
        availability,
    } = scratch;
    availability.clear();
    availability.resize(pieces, 1); // the seeder's copies
    in_flight.clear();
    in_flight.resize(pieces, false);

    // Round-robin cursor for the seeder's uniform service.
    let mut seeder_cursor = 0usize;
    let seeder_slots = config.regular_slots + 1;

    let mut ticks_elapsed = 0;
    drop(setup_span);

    // Allocation count at the edge of the round loop: the loop is the
    // steady state, so its delta — fed to mem.run_allocs.btsim under
    // --alloc — must be zero once this scratch is warm. Setup and
    // payoff assembly allocate outputs by design and stay outside
    // the window.
    let loop_allocs = dsa_obs::alloc::thread_count();
    let rounds_span = dsa_obs::span("btsim.rounds");
    for tick in 0..config.max_ticks {
        ticks_elapsed = tick + 1;

        // ---- Rechoke ----
        if tick % config.rechoke_period == 0 {
            for p in peers.iter_mut() {
                p.roll_window(config.rechoke_period as f64);
            }
            let rotate_optimistic = tick % config.optimistic_period == 0;

            for i in 0..n {
                if !peers[i].active() {
                    continue;
                }
                let kind = kinds[i];
                let slots = kind.regular_slots(config.regular_slots);
                // Peers interested in me: active, lacking something I have.
                interested.clear();
                interested.extend((0..swarm_size).filter(|&j| {
                    j != i
                        && j != seeder
                        && peers[j].active()
                        && peers[j].bitfield.interested_in(&peers[i].bitfield)
                }));
                // Randomize rate ties (real clients do not share a global
                // preference order; index-deterministic ties would herd
                // every unchoke onto the same few peers).
                sampling::shuffle(interested, &mut rng);
                let my_slot_rate = peers[i].upload_capacity / (slots + 1) as f64;
                kind.rank_into(
                    &peers[i],
                    my_slot_rate,
                    interested,
                    &mut rng,
                    vals,
                    order,
                    ranked,
                );
                // Regular unchokes reuse the peer's own buffer.
                peers[i].unchoked.clear();
                let take = slots.min(ranked.len());
                peers[i].unchoked.extend_from_slice(&ranked[..take]);

                // Optimistic unchoke rotation.
                if rotate_optimistic {
                    peers[i].optimistic = None;
                    if kind.optimistic_allowed(take, slots) {
                        pool.clear();
                        let regular = &peers[i].unchoked;
                        pool.extend(interested.iter().copied().filter(|j| !regular.contains(j)));
                        peers[i].optimistic = sampling::choose(pool, &mut rng).copied();
                    }
                } else if let Some(o) = peers[i].optimistic {
                    // Drop a stale optimistic target that departed or lost
                    // interest.
                    let stale = !peers[o].active()
                        || !peers[o].bitfield.interested_in(&peers[i].bitfield)
                        || peers[i].unchoked.contains(&o);
                    if stale {
                        peers[i].optimistic = None;
                    }
                }
            }

            // Seeder: uniform round-robin over active, incomplete leechers.
            wanting.clear();
            wanting.extend((0..n).filter(|&j| peers[j].active() && !peers[j].bitfield.complete()));
            chosen.clear();
            if !wanting.is_empty() {
                for step in 0..wanting.len() {
                    if chosen.len() >= seeder_slots {
                        break;
                    }
                    let idx = wanting[(seeder_cursor + step) % wanting.len()];
                    chosen.push(idx);
                }
                seeder_cursor = (seeder_cursor + seeder_slots) % wanting.len().max(1);
            }
            peers[seeder].unchoked.clear();
            peers[seeder].unchoked.extend_from_slice(chosen);
            peers[seeder].optimistic = None;
        }

        // ---- Transfers ----
        newly_complete.clear();
        for i in 0..swarm_size {
            if !peers[i].active() {
                continue;
            }
            targets.clear();
            targets.extend(
                peers[i]
                    .unchoked
                    .iter()
                    .copied()
                    .chain(peers[i].optimistic)
                    .filter(|&j| {
                        peers[j].active() && peers[j].bitfield.interested_in(&peers[i].bitfield)
                    }),
            );
            targets.dedup();
            if targets.is_empty() {
                continue;
            }
            let share = peers[i].upload_capacity / targets.len() as f64;

            for &j in targets.iter() {
                // Pieces already in progress from some giver: avoid
                // *starting* duplicates, but continuing one is preferred.
                for (p, flag) in in_flight.iter_mut().enumerate() {
                    *flag = peers[j].piece_progress[p] > 0.0;
                }
                let mut budget = share;
                while budget > 0.0 {
                    let target_piece = match crate::piece::continue_piece(
                        &peers[j].bitfield,
                        &peers[i].bitfield,
                        &peers[j].piece_progress,
                    ) {
                        Some(p) => p,
                        None => match rarest_first(
                            &peers[j].bitfield,
                            &peers[i].bitfield,
                            availability,
                            in_flight,
                            &mut rng,
                        ) {
                            Some(p) => p,
                            None => break,
                        },
                    };
                    let needed = config.piece_kib - peers[j].piece_progress[target_piece];
                    let chunk = budget.min(needed);
                    peers[j].piece_progress[target_piece] += chunk;
                    peers[j].window_received[i] += chunk;
                    budget -= chunk;
                    if peers[j].piece_progress[target_piece] >= config.piece_kib - 1e-9 {
                        peers[j].piece_progress[target_piece] = 0.0;
                        if peers[j].bitfield.set(target_piece) {
                            availability[target_piece] += 1;
                            if peers[j].bitfield.complete() && j < n {
                                newly_complete.push(j);
                            }
                        }
                        in_flight[target_piece] = true;
                    } else {
                        // Partial progress: this giver keeps filling the
                        // same piece next tick; budget exhausted.
                        break;
                    }
                }
            }
        }

        // ---- Completions & departures ----
        for &j in newly_complete.iter() {
            if peers[j].completed_at.is_none() {
                peers[j].completed_at = Some(tick + 1);
                if config.leave_on_completion {
                    peers[j].departed = true;
                    for (p, avail) in availability.iter_mut().enumerate().take(pieces) {
                        if peers[j].bitfield.has(p) {
                            *avail -= 1;
                        }
                    }
                }
            }
        }

        if (0..n).all(|j| peers[j].completed_at.is_some()) {
            break;
        }
    }
    drop(rounds_span);
    let loop_allocs = dsa_obs::alloc::thread_count().saturating_sub(loop_allocs);

    let _payoff_span = dsa_obs::span("btsim.payoff");

    // Arena accounting (see the swarm engine for the pattern).
    if dsa_obs::metrics_enabled() {
        let bytes = scratch.footprint() as f64;
        dsa_obs::gauge_max("mem.arena.btsim_bytes", bytes);
        dsa_obs::gauge_max("mem.arena_peak_bytes", bytes);
        if dsa_obs::alloc::enabled() {
            dsa_obs::observe_thread_dependent("mem.run_allocs.btsim", loop_allocs);
        }
    }
    SwarmOutcome {
        completion_ticks: (0..n).map(|j| peers[j].completed_at).collect(),
        kinds: kinds.to_vec(),
        ticks_elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_workloads::bandwidth::BandwidthDist;

    fn tiny() -> BtConfig {
        BtConfig {
            bandwidth: BandwidthDist::Constant(32.0),
            ..BtConfig::tiny()
        }
    }

    #[test]
    fn homogeneous_bittorrent_swarm_completes() {
        let cfg = tiny();
        let kinds = vec![ClientKind::BitTorrent; cfg.leechers];
        let out = simulate(&kinds, &cfg, 1);
        assert!(out.all_completed(), "unfinished: {out:?}");
        assert!(out.mean_download_time(None) > 0.0);
    }

    #[test]
    fn every_variant_completes_homogeneously() {
        let cfg = tiny();
        for kind in ClientKind::ALL {
            let kinds = vec![kind; cfg.leechers];
            let out = simulate(&kinds, &cfg, 2);
            assert!(
                out.all_completed(),
                "{} failed to complete: {:?}",
                kind.name(),
                out.completion_ticks
            );
        }
    }

    #[test]
    fn download_time_lower_bound_respects_seed_capacity() {
        // The seed must push at least one full copy: file/seed_upload.
        let cfg = tiny();
        let kinds = vec![ClientKind::BitTorrent; cfg.leechers];
        let out = simulate(&kinds, &cfg, 3);
        let last = out
            .download_times(None)
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(last >= cfg.file_kib / cfg.seed_upload);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = tiny();
        let kinds = vec![ClientKind::Birds; cfg.leechers];
        assert_eq!(simulate(&kinds, &cfg, 7), simulate(&kinds, &cfg, 7));
        assert_ne!(
            simulate(&kinds, &cfg, 7).completion_ticks,
            simulate(&kinds, &cfg, 8).completion_ticks
        );
    }

    #[test]
    fn mixed_swarm_reports_group_times() {
        let cfg = tiny();
        let mut kinds = vec![ClientKind::BitTorrent; cfg.leechers];
        for k in kinds.iter_mut().take(cfg.leechers / 2) {
            *k = ClientKind::Birds;
        }
        let out = simulate(&kinds, &cfg, 4);
        let birds = out.download_times(Some(ClientKind::Birds));
        let bt = out.download_times(Some(ClientKind::BitTorrent));
        assert_eq!(birds.len(), cfg.leechers / 2);
        assert_eq!(bt.len(), cfg.leechers - cfg.leechers / 2);
    }

    #[test]
    fn faster_population_finishes_sooner() {
        let slow_cfg = tiny();
        let fast_cfg = BtConfig {
            bandwidth: BandwidthDist::Constant(128.0),
            ..tiny()
        };
        let kinds = vec![ClientKind::BitTorrent; slow_cfg.leechers];
        let slow = simulate(&kinds, &slow_cfg, 5).mean_download_time(None);
        let fast = simulate(&kinds, &fast_cfg, 5).mean_download_time(None);
        assert!(fast < slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn paper_scale_swarm_runs() {
        let cfg = BtConfig::default();
        let kinds = vec![ClientKind::BitTorrent; cfg.leechers];
        let out = simulate(&kinds, &cfg, 6);
        assert!(out.all_completed());
        let mean = out.mean_download_time(None);
        // Sanity: minutes, not hours; slower than the seed-copy bound.
        assert!(mean > 40.0 && mean < 1200.0, "mean time {mean}");
    }

    #[test]
    #[should_panic(expected = "one client kind per leecher")]
    fn kind_count_must_match() {
        let cfg = tiny();
        let _ = simulate(&[ClientKind::BitTorrent], &cfg, 1);
    }
}
