//! Piece bookkeeping: bitfields and rarest-first selection.

/// A peer's piece possession bitfield.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitfield {
    bits: Vec<bool>,
    have: usize,
}

impl Bitfield {
    /// An empty bitfield over `n` pieces.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self {
            bits: vec![false; n],
            have: 0,
        }
    }

    /// A complete bitfield (the seeder's).
    #[must_use]
    pub fn full(n: usize) -> Self {
        Self {
            bits: vec![true; n],
            have: n,
        }
    }

    /// Whether piece `p` is present.
    #[inline]
    #[must_use]
    pub fn has(&self, p: usize) -> bool {
        self.bits[p]
    }

    /// Marks piece `p` present; returns whether it was newly acquired.
    pub fn set(&mut self, p: usize) -> bool {
        if self.bits[p] {
            false
        } else {
            self.bits[p] = true;
            self.have += 1;
            true
        }
    }

    /// Number of pieces present.
    #[must_use]
    pub fn count(&self) -> usize {
        self.have
    }

    /// Whether the file is complete.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.have == self.bits.len()
    }

    /// Total number of pieces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True for a zero-piece file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether `other` has any piece this bitfield lacks — the BitTorrent
    /// *interested* predicate.
    #[must_use]
    pub fn interested_in(&self, other: &Bitfield) -> bool {
        self.bits
            .iter()
            .zip(&other.bits)
            .any(|(mine, theirs)| !mine && *theirs)
    }
}

/// Picks the partially-downloaded piece with the most progress that
/// `source` can serve — continuing an in-progress piece always beats
/// starting a new one (otherwise progress smears across all pieces and
/// none ever completes).
#[must_use]
pub fn continue_piece(wanting: &Bitfield, source: &Bitfield, progress: &[f64]) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (p, &prog) in progress.iter().enumerate().take(wanting.len()) {
        if wanting.has(p) || !source.has(p) || prog <= 0.0 {
            continue;
        }
        if best.is_none_or(|(bp, _)| prog > bp) {
            best = Some((prog, p));
        }
    }
    best.map(|(_, p)| p)
}

/// Selects the next piece to fetch from `source`: the piece the `wanting`
/// peer lacks, the source has, preferring pieces not already in flight,
/// then globally rarest (lowest availability), with *random* tie-breaks —
/// deterministic tie-breaks would give every peer an identical download
/// order and identical bitfields, collapsing mutual interest (and hence
/// swarm throughput). `availability[p]` counts how many connected peers
/// hold piece `p`.
///
/// Returns `None` when the source has nothing useful.
#[must_use]
pub fn rarest_first(
    wanting: &Bitfield,
    source: &Bitfield,
    availability: &[u32],
    in_flight: &[bool],
    rng: &mut dsa_workloads::rng::Xoshiro256pp,
) -> Option<usize> {
    let mut best: Option<(bool, u32)> = None;
    let mut ties: Vec<usize> = Vec::new();
    for p in 0..wanting.len() {
        if wanting.has(p) || !source.has(p) {
            continue;
        }
        // Prefer pieces nobody is fetching yet, then rarest.
        let key = (in_flight[p], availability[p]);
        match best {
            None => {
                best = Some(key);
                ties.push(p);
            }
            Some(b) if key < b => {
                best = Some(key);
                ties.clear();
                ties.push(p);
            }
            Some(b) if key == b => ties.push(p),
            Some(_) => {}
        }
    }
    if ties.is_empty() {
        None
    } else {
        Some(ties[rng.index(ties.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_workloads::rng::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(9)
    }

    #[test]
    fn empty_and_full() {
        let e = Bitfield::empty(4);
        let f = Bitfield::full(4);
        assert_eq!(e.count(), 0);
        assert!(f.complete());
        assert!(!e.complete());
        assert!(e.interested_in(&f));
        assert!(!f.interested_in(&e));
    }

    #[test]
    fn set_tracks_count_and_idempotence() {
        let mut b = Bitfield::empty(3);
        assert!(b.set(1));
        assert!(!b.set(1));
        assert_eq!(b.count(), 1);
        assert!(b.has(1));
        assert!(!b.has(0));
    }

    #[test]
    fn interest_requires_novelty() {
        let mut a = Bitfield::empty(2);
        let mut b = Bitfield::empty(2);
        a.set(0);
        b.set(0);
        assert!(!a.interested_in(&b));
        b.set(1);
        assert!(a.interested_in(&b));
    }

    #[test]
    fn rarest_first_prefers_low_availability() {
        let want = Bitfield::empty(3);
        let src = Bitfield::full(3);
        let avail = [5, 1, 3];
        let in_flight = [false; 3];
        assert_eq!(
            rarest_first(&want, &src, &avail, &in_flight, &mut rng()),
            Some(1)
        );
    }

    #[test]
    fn rarest_first_skips_owned_and_missing() {
        let mut want = Bitfield::empty(3);
        want.set(1); // already own the rarest
        let mut src = Bitfield::empty(3);
        src.set(1);
        src.set(2);
        let avail = [0, 1, 9];
        let in_flight = [false; 3];
        // Only piece 2 is useful (0 not at source, 1 owned).
        assert_eq!(
            rarest_first(&want, &src, &avail, &in_flight, &mut rng()),
            Some(2)
        );
    }

    #[test]
    fn rarest_first_avoids_in_flight_when_possible() {
        let want = Bitfield::empty(2);
        let src = Bitfield::full(2);
        let avail = [1, 2];
        // The rarest piece is already being fetched elsewhere.
        let in_flight = [true, false];
        assert_eq!(
            rarest_first(&want, &src, &avail, &in_flight, &mut rng()),
            Some(1)
        );
        // ... unless it is the only option.
        let mut want2 = Bitfield::empty(2);
        want2.set(1);
        assert_eq!(
            rarest_first(&want2, &src, &avail, &in_flight, &mut rng()),
            Some(0)
        );
    }

    #[test]
    fn rarest_first_none_when_nothing_useful() {
        let want = Bitfield::full(2);
        let src = Bitfield::full(2);
        assert_eq!(
            rarest_first(&want, &src, &[1, 1], &[false, false], &mut rng()),
            None
        );
    }
}
