//! Piece-level BitTorrent swarm simulator — the Section 5 validation
//! substrate.
//!
//! The paper validates DSA-discovered protocols by modifying an
//! instrumented BitTorrent client and running cluster experiments: 50
//! leechers, one 128 KBps seed, a local tracker, 5 MB files, peers leave
//! on completion, bandwidths from Piatek et al. This crate reproduces that
//! testbed as a discrete-time (1 s tick) simulator with real BitTorrent
//! mechanics:
//!
//! * pieces and bitfields, rarest-first piece selection,
//! * interest/choke state, periodic rechoke (10 s) with per-variant
//!   ranking, optimistic unchoke rotation (30 s),
//! * a seeder that serves uniformly (round-robin), as assumed in §2.1,
//! * departure on completion and per-peer download-time measurement.
//!
//! Client variants ([`choker::ClientKind`]) correspond to the §5 clients:
//! reference BitTorrent, Birds (proximity ranking), Loyal-When-needed,
//! Sort-S and Sort-Random. [`experiment`] provides the mixed-swarm
//! encounters of Figures 9–10.

pub mod choker;
pub mod config;
pub mod experiment;
pub mod peer;
pub mod piece;
pub mod swarm;

pub use choker::ClientKind;
pub use config::BtConfig;
pub use swarm::{simulate, SwarmOutcome};
