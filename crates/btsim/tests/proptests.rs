//! Property-based tests of the piece-level swarm's safety properties.

use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::swarm::simulate;
use dsa_workloads::bandwidth::BandwidthDist;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ClientKind> {
    prop_oneof![
        Just(ClientKind::BitTorrent),
        Just(ClientKind::Birds),
        Just(ClientKind::LoyalWhenNeeded),
        Just(ClientKind::SortS),
        Just(ClientKind::RandomRank),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mixed swarm of the §5 clients completes, and no completion
    /// precedes the seed's single-copy lower bound.
    #[test]
    fn mixed_swarms_complete(
        kinds in proptest::collection::vec(kind_strategy(), 6..=6),
        seed in any::<u64>(),
    ) {
        let cfg = BtConfig {
            leechers: 6,
            seed_upload: 64.0,
            file_kib: 256.0,
            piece_kib: 64.0,
            bandwidth: BandwidthDist::Constant(32.0),
            max_ticks: 2000,
            ..BtConfig::default()
        };
        let out = simulate(&kinds, &cfg, seed);
        prop_assert!(out.all_completed(), "{:?}", out.completion_ticks);
        let earliest = out
            .completion_ticks
            .iter()
            .flatten()
            .copied()
            .min()
            .unwrap();
        // At least one piece must travel seed → leecher first.
        prop_assert!(earliest as f64 >= cfg.piece_kib / cfg.seed_upload);
    }

    /// Download-time accounting matches the tick horizon.
    #[test]
    fn times_bounded_by_horizon(seed in any::<u64>()) {
        let cfg = BtConfig {
            leechers: 4,
            file_kib: 128.0,
            piece_kib: 64.0,
            seed_upload: 64.0,
            bandwidth: BandwidthDist::Constant(16.0),
            max_ticks: 600,
            ..BtConfig::default()
        };
        let kinds = vec![ClientKind::BitTorrent; 4];
        let out = simulate(&kinds, &cfg, seed);
        for t in out.download_times(None) {
            prop_assert!(t > 0.0 && t <= out.ticks_elapsed as f64);
        }
    }
}
