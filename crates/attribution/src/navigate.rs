//! The dimension-flip navigator: model-guided single-actualization moves.
//!
//! Shaw's use of a design space is *navigation* — understanding which
//! dimension to move along from where you stand. Given two fitted axes
//! (one to improve, one to guard), the navigator enumerates every
//! single-coordinate flip of a starting protocol, predicts both axes'
//! deltas from the fitted main-effects models (the difference of the two
//! levels' dummy estimates), keeps the flips that improve the target
//! without degrading the guard beyond a tolerance, and then *verifies*
//! the top suggestions against the true sweep values — the regression
//! proposes, the measurement disposes.

use crate::design::DesignMatrix;
use crate::fit::AxisAttribution;
use dsa_core::space::DesignSpace;
use std::collections::HashMap;

/// One suggested single-actualization change, with its model-predicted
/// and measured consequences.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipSuggestion {
    /// The protocol index the flip lands on.
    pub index: usize,
    /// Dimension being flipped.
    pub dim: String,
    /// Level moved away from.
    pub from_level: String,
    /// Level moved to.
    pub to_level: String,
    /// Model-predicted delta on the improved axis.
    pub predicted_improve: f64,
    /// Model-predicted delta on the guarded axis (0 when unguarded).
    pub predicted_guard: f64,
    /// Measured delta on the improved axis (`NaN` when the target lies
    /// outside the measured rows).
    pub actual_improve: f64,
    /// Measured delta on the guarded axis (`NaN` outside the rows).
    pub actual_guard: f64,
}

impl FlipSuggestion {
    /// Whether the sweep confirms the prediction: the improved axis
    /// measurably gained and the guard did not measurably lose more than
    /// `tolerance`. An unmeasured guard (`NaN` — unguarded navigation, or
    /// a target outside the measured rows) cannot refute the suggestion;
    /// an unmeasured *improvement* cannot confirm it.
    #[must_use]
    pub fn verified(&self, tolerance: f64) -> bool {
        self.actual_improve > 0.0 && (self.actual_guard.is_nan() || self.actual_guard >= -tolerance)
    }
}

/// Enumerates, ranks and verifies the single-dimension flips from
/// `start`: which one actualization change most improves `improve`
/// without predicted damage beyond `guard_tolerance` on `guard`?
/// Suggestions come back ranked by predicted improvement (best first),
/// at most `top`, each verified against the true per-row axis values.
///
/// Returns an empty list when the improved axis has no fitted model (the
/// navigator refuses to guess without one) or when no flip is predicted
/// to help.
///
/// # Panics
///
/// Panics when `start` lies outside the space.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn navigate(
    space: &DesignSpace,
    dm: &DesignMatrix,
    improve: &AxisAttribution,
    guard: Option<&AxisAttribution>,
    improve_y: &[f64],
    guard_y: Option<&[f64]>,
    start: usize,
    guard_tolerance: f64,
    top: usize,
) -> Vec<FlipSuggestion> {
    if improve.fit.is_none() || (guard.is_some() && guard.and_then(|g| g.fit.as_ref()).is_none()) {
        return Vec::new();
    }
    let row_of: HashMap<usize, usize> = dm
        .rows
        .iter()
        .enumerate()
        .map(|(row, &index)| (index, row))
        .collect();
    let coords = space.coords(start);
    let start_row = row_of.get(&start).copied();
    let mut suggestions = Vec::new();
    for (k, code) in dm.dims.iter().enumerate() {
        let current = coords[code.dim];
        let Some(est_now) = improve.level_estimate(dm, k, current) else {
            // The starting point uses a level the surface never measured;
            // no calibrated prediction exists along this dimension.
            continue;
        };
        let guard_now = guard.and_then(|g| g.level_estimate(dm, k, current));
        for &level in &code.levels {
            if level == current {
                continue;
            }
            let predicted_improve =
                improve.level_estimate(dm, k, level).expect("present level") - est_now;
            let predicted_guard = match (guard, guard_now) {
                (Some(g), Some(now)) => {
                    g.level_estimate(dm, k, level).expect("present level") - now
                }
                _ => 0.0,
            };
            if predicted_improve <= 0.0 || predicted_guard < -guard_tolerance {
                continue;
            }
            let mut target = coords.clone();
            target[code.dim] = level;
            let index = space.index(&target);
            let actual = |y: &[f64]| match (start_row, row_of.get(&index)) {
                (Some(s), Some(&t)) => y[t] - y[s],
                _ => f64::NAN,
            };
            let dim_names = &space.dimensions()[code.dim];
            suggestions.push(FlipSuggestion {
                index,
                dim: code.name.clone(),
                from_level: dim_names.levels[current].clone(),
                to_level: dim_names.levels[level].clone(),
                predicted_improve,
                predicted_guard,
                actual_improve: actual(improve_y),
                actual_guard: guard_y.map_or(f64::NAN, actual),
            });
        }
    }
    suggestions.sort_by(|a, b| {
        b.predicted_improve
            .total_cmp(&a.predicted_improve)
            .then_with(|| a.index.cmp(&b.index))
    });
    suggestions.truncate(top);
    suggestions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::attribute_axis;
    use dsa_core::space::Dimension;

    /// 3 × 2 additive space: A raises the target axis, B trades the
    /// target against the guard.
    fn setup() -> (DesignSpace, DesignMatrix, Vec<f64>, Vec<f64>) {
        let s = DesignSpace::new(
            "nav",
            vec![
                Dimension::new("A", vec!["a0".into(), "a1".into(), "a2".into()]),
                Dimension::new("B", vec!["b0".into(), "b1".into()]),
            ],
        );
        let rows: Vec<usize> = s.indices().collect();
        let dm = DesignMatrix::build(&s, &rows, 1);
        let perf: Vec<f64> = rows
            .iter()
            .map(|&i| {
                let c = s.coords(i);
                let noise = ((i * 37 % 7) as f64 - 3.0) / 1000.0;
                c[0] as f64 + 0.5 * c[1] as f64 + noise
            })
            .collect();
        let rob: Vec<f64> = rows
            .iter()
            .map(|&i| {
                let c = s.coords(i);
                1.0 - 0.8 * c[1] as f64 + ((i * 13 % 5) as f64 - 2.0) / 1000.0
            })
            .collect();
        (s, dm, perf, rob)
    }

    #[test]
    fn navigator_prefers_the_biggest_safe_flip() {
        let (s, dm, perf, rob) = setup();
        let perf_fit = attribute_axis(&dm, "perf", &perf);
        let rob_fit = attribute_axis(&dm, "rob", &rob);
        // Start at the origin (A=a0, B=b0); guard robustness tightly.
        let out = navigate(
            &s,
            &dm,
            &perf_fit,
            Some(&rob_fit),
            &perf,
            Some(&rob),
            0,
            0.05,
            10,
        );
        // B=b1 would raise perf by 0.5 but costs 0.8 robustness — it must
        // be filtered; the A flips survive, a2 first.
        assert!(!out.is_empty());
        assert!(out.iter().all(|f| f.dim == "A"));
        assert_eq!(out[0].to_level, "a2");
        assert!(out[0].predicted_improve > out[1].predicted_improve);
        // Verification against the true sweep agrees with the model.
        for f in &out {
            assert!(f.verified(0.05), "{f:?}");
            assert!((f.actual_improve - f.predicted_improve).abs() < 0.1);
        }
    }

    #[test]
    fn unguarded_navigation_takes_the_tradeoff_flip_too() {
        let (s, dm, perf, _) = setup();
        let perf_fit = attribute_axis(&dm, "perf", &perf);
        let out = navigate(&s, &dm, &perf_fit, None, &perf, None, 0, 0.0, 10);
        assert!(out.iter().any(|f| f.dim == "B"));
        assert!(out.iter().all(|f| f.actual_guard.is_nan()));
        // An unmeasured guard must not refute a measured improvement:
        // every flip here truly raises perf, so all are verified.
        assert!(out.iter().all(|f| f.verified(0.0)), "{out:?}");
    }

    #[test]
    fn navigator_without_a_fit_stays_silent() {
        let s = DesignSpace::new(
            "tiny",
            vec![Dimension::new("A", vec!["a0".into(), "a1".into()])],
        );
        let dm = DesignMatrix::build(&s, &[0, 1], 1);
        let y = [0.0, 1.0];
        let at = attribute_axis(&dm, "x", &y);
        assert!(at.fit.is_none());
        assert!(navigate(&s, &dm, &at, None, &y, None, 0, 0.0, 5).is_empty());
    }
}
