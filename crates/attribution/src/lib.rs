//! Variance attribution over DSA response surfaces — the Table 3 engine,
//! generalized.
//!
//! The PRA cube (and the attack and evolution surfaces layered on it in
//! later PRs) tells you *what* each protocol scores; the paper's
//! analytic payoff is Table 3, which tells you *why* — a multiple linear
//! regression attributing the variance of each measure to the design
//! dimensions, "turning a 10k-point sweep into actionable design
//! guidance". This crate writes that analysis once, against any
//! registered domain and any measured response surface:
//!
//! 1. [`design`] dummy-codes a [`dsa_core::space::DesignSpace`] (or any
//!    row subset of one) into a regression design matrix, in parallel
//!    and bit-identically across thread counts.
//! 2. [`response`] adapts the workspace's three cached surfaces — the
//!    PRA sweep, the robustness-under-budget attack sweeps, and the
//!    evolutionary candidate outcomes — into one [`response::ResponseSurface`]
//!    shape, loaded through their own stamped caches.
//! 3. [`fit`] runs the per-axis attribution: the main-effects OLS fit
//!    (via [`dsa_stats::ols`]), per-dimension one-way η² and partial η²
//!    effect sizes with nested-model F-tests, and the pairwise
//!    interaction scan ranked by incremental R².
//! 4. [`navigate`] is the dimension-flip navigator: which single
//!    actualization change most improves axis X without degrading axis
//!    Y — predicted from the fitted model, then *verified* against the
//!    true sweep values.
//! 5. [`sweep`] stamps the derived tables at
//!    `results/attrib-<domain>-<response>-<scale>.csv` with an `attrib=`
//!    fingerprint over the source sweeps' stamps and the model spec, so
//!    changed sweeps or model changes self-invalidate without touching
//!    PRA/attack/evo caches.
//!
//! Surfaced as `dsa <domain> attribute {fit,interactions,navigate}` and
//! `experiments attribution [--response pra|attack|evolution]`.

pub mod design;
pub mod fit;
pub mod navigate;
pub mod response;
pub mod sweep;

pub use design::{DesignMatrix, DimCode};
pub use fit::{attribute_axis, interaction_scan, AxisAttribution, DimEffect, InteractionEffect};
pub use navigate::{navigate, FlipSuggestion};
pub use response::{attack_surface, evolution_surface, pra_surface, ResponseKind, ResponseSurface};
pub use sweep::{attribute_surface, fingerprint, AttribTable, AxisSummary, SPEC_VERSION};
