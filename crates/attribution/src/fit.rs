//! Per-axis attribution: main-effect regressions, per-dimension effect
//! sizes and the pairwise interaction scan.
//!
//! For one response axis `y` over a [`DesignMatrix`], the attribution
//! fits the Table 3-style main-effects model `y ~ 1 + Σ dummies` and
//! quantifies each dimension two ways:
//!
//! * **one-way η²** — the dimension's between-level sum of squares over
//!   the total (no model needed, so it survives tiny row subsets like
//!   evolutionary candidate sets where the full regression is
//!   under-determined);
//! * **partial η²** with a nested-model F-test — refit with the
//!   dimension's column block removed, compare residual sums of squares
//!   ([`dsa_stats::ols::partial_eta_squared`] /
//!   [`dsa_stats::ols::nested_f_test`]).
//!
//! The interaction scan augments the main-effects model with one
//! dimension pair's product columns at a time and ranks the pairs by
//! incremental R² — the map of where the design space is *not* additive.

use crate::design::DesignMatrix;
use dsa_stats::ols::{fit, nested_f_test, partial_eta_squared, residual_ss, OlsFit};

/// One dimension's share of a response axis' variance.
#[derive(Debug, Clone, PartialEq)]
pub struct DimEffect {
    /// Dimension name.
    pub name: String,
    /// Number of levels present among the rows.
    pub levels: usize,
    /// One-way η²: between-level SS over total SS (model-free).
    pub eta_sq: f64,
    /// Partial η² from the nested main-effects comparison; `NaN` when the
    /// full regression is infeasible on this surface.
    pub partial_eta_sq: f64,
    /// Nested-model F statistic; `NaN` without a full fit.
    pub f_stat: f64,
    /// Upper-tail p-value of the F statistic; `NaN` without a full fit.
    pub p_value: f64,
}

/// The full attribution of one response axis.
#[derive(Debug, Clone)]
pub struct AxisAttribution {
    /// Axis name (`"performance"`, `"sybil"`, `"basin"`, ...).
    pub axis: String,
    /// Number of observations.
    pub n: usize,
    /// The fitted main-effects model, when the surface supports it
    /// (enough rows, full-rank design). `None` falls back to one-way η²
    /// only.
    pub fit: Option<OlsFit>,
    /// Per-dimension effects, in space-descriptor order.
    pub dims: Vec<DimEffect>,
}

impl AxisAttribution {
    /// R² of the main-effects model (`NaN` without a fit).
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.fit.as_ref().map_or(f64::NAN, |f| f.r_squared)
    }

    /// Adjusted R² of the main-effects model (`NaN` without a fit).
    #[must_use]
    pub fn adj_r_squared(&self) -> f64 {
        self.fit.as_ref().map_or(f64::NAN, |f| f.adj_r_squared)
    }

    /// The fitted estimate of the indicator column coding `level` of
    /// coded dimension `coded_dim` — 0 for the baseline level — or `None`
    /// without a full fit or for a level absent from the surface. This is
    /// what the dimension-flip navigator differences.
    #[must_use]
    pub fn level_estimate(&self, dm: &DesignMatrix, coded_dim: usize, level: usize) -> Option<f64> {
        let fit = self.fit.as_ref()?;
        let code = &dm.dims[coded_dim];
        if !code.levels.contains(&level) {
            return None;
        }
        Some(match code.column_of(level) {
            // terms[0] is the intercept; column j is term j + 1.
            Some(col) => fit.terms[col + 1].estimate,
            None => 0.0,
        })
    }
}

/// One-way η² of coded dimension `coded_dim` for response `y`:
/// `SS_between / SS_total` over the dimension's level groups. Returns 0
/// for a constant response.
#[must_use]
pub fn one_way_eta_sq(dm: &DesignMatrix, coded_dim: usize, y: &[f64]) -> f64 {
    let code = &dm.dims[coded_dim];
    let d = code.dim;
    let n = y.len();
    let grand = y.iter().sum::<f64>() / n.max(1) as f64;
    let mut ss_tot = 0.0;
    for &v in y {
        ss_tot += (v - grand) * (v - grand);
    }
    if ss_tot <= 0.0 {
        return 0.0;
    }
    let mut ss_between = 0.0;
    for &level in &code.levels {
        let (mut sum, mut count) = (0.0f64, 0usize);
        for (c, &v) in dm.coords.iter().zip(y) {
            if c[d] == level {
                sum += v;
                count += 1;
            }
        }
        if count > 0 {
            let mean = sum / count as f64;
            ss_between += count as f64 * (mean - grand) * (mean - grand);
        }
    }
    (ss_between / ss_tot).clamp(0.0, 1.0)
}

/// Attributes one response axis over a design matrix: the main-effects
/// fit (when feasible), one-way η² per dimension, and partial η² with a
/// nested F-test per dimension on top of the full model.
///
/// # Panics
///
/// Panics when `y` and the matrix disagree in length.
#[must_use]
pub fn attribute_axis(dm: &DesignMatrix, axis: &str, y: &[f64]) -> AxisAttribution {
    assert_eq!(y.len(), dm.n(), "response length must match the rows");
    let full_ss = residual_ss(&dm.columns, y).ok();
    let full_fit = full_ss.and_then(|_| fit(&dm.columns, y).ok());
    let dims = (0..dm.dims.len())
        .map(|k| {
            let eta_sq = one_way_eta_sq(dm, k, y);
            let (partial, f_stat, p_value) = match full_ss {
                Some(full) => match residual_ss(&dm.without(k), y) {
                    Ok(reduced) => {
                        let (f_stat, p) = nested_f_test(&full, &reduced);
                        (partial_eta_squared(&full, &reduced), f_stat, p)
                    }
                    Err(_) => (f64::NAN, f64::NAN, f64::NAN),
                },
                None => (f64::NAN, f64::NAN, f64::NAN),
            };
            DimEffect {
                name: dm.dims[k].name.clone(),
                levels: dm.dims[k].levels.len(),
                eta_sq,
                partial_eta_sq: partial,
                f_stat,
                p_value,
            }
        })
        .collect();
    AxisAttribution {
        axis: axis.to_string(),
        n: dm.n(),
        fit: full_fit,
        dims,
    }
}

/// One dimension pair's contribution beyond the additive model.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionEffect {
    /// First dimension name.
    pub dim_a: String,
    /// Second dimension name.
    pub dim_b: String,
    /// Number of product columns the pair adds.
    pub columns: usize,
    /// Incremental R² of the augmented model over the main-effects model;
    /// `NaN` when the augmented design is infeasible (aliased cells).
    pub delta_r2: f64,
    /// Nested-model F statistic of the interaction block.
    pub f_stat: f64,
    /// Upper-tail p-value of the F statistic.
    pub p_value: f64,
}

/// Scans every unordered pair of coded dimensions, augmenting the
/// main-effects model with the pair's product columns, and returns the
/// pairs ranked by incremental R² (infeasible pairs last).
///
/// # Panics
///
/// Panics when `y` and the matrix disagree in length.
#[must_use]
pub fn interaction_scan(dm: &DesignMatrix, y: &[f64]) -> Vec<InteractionEffect> {
    assert_eq!(y.len(), dm.n(), "response length must match the rows");
    let main = residual_ss(&dm.columns, y).ok();
    let k = dm.dims.len();
    let mut out = Vec::new();
    for a in 0..k {
        for b in (a + 1)..k {
            let (cols, added) = dm.with_interaction(a, b);
            let effect = match (main, residual_ss(&cols, y)) {
                (Some(main_ss), Ok(aug)) => {
                    let (f_stat, p_value) = nested_f_test(&aug, &main_ss);
                    InteractionEffect {
                        dim_a: dm.dims[a].name.clone(),
                        dim_b: dm.dims[b].name.clone(),
                        columns: added,
                        delta_r2: (aug.r_squared() - main_ss.r_squared()).max(0.0),
                        f_stat,
                        p_value,
                    }
                }
                _ => InteractionEffect {
                    dim_a: dm.dims[a].name.clone(),
                    dim_b: dm.dims[b].name.clone(),
                    columns: added,
                    delta_r2: f64::NAN,
                    f_stat: f64::NAN,
                    p_value: f64::NAN,
                },
            };
            out.push(effect);
        }
    }
    // Rank by incremental R², NaNs last, ties broken by name for a
    // deterministic order.
    out.sort_by(|x, y| {
        match (x.delta_r2.is_nan(), y.delta_r2.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => y.delta_r2.total_cmp(&x.delta_r2),
        }
        .then_with(|| {
            (x.dim_a.as_str(), x.dim_b.as_str()).cmp(&(y.dim_a.as_str(), y.dim_b.as_str()))
        })
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::space::{DesignSpace, Dimension};

    /// 3 × 2 × 2 space with a planted structure: dimension A carries a
    /// large additive effect, B a small one, C none; A and B interact.
    fn planted() -> (DesignMatrix, Vec<f64>) {
        let s = DesignSpace::new(
            "planted",
            vec![
                Dimension::new("A", vec!["a0".into(), "a1".into(), "a2".into()]),
                Dimension::new("B", vec!["b0".into(), "b1".into()]),
                Dimension::new("C", vec!["c0".into(), "c1".into()]),
            ],
        );
        let rows: Vec<usize> = s.indices().collect();
        let dm = DesignMatrix::build(&s, &rows, 1);
        let y: Vec<f64> = rows
            .iter()
            .map(|&i| {
                let c = s.coords(i);
                let noise = ((i * 37 % 11) as f64 - 5.0) / 200.0;
                10.0 * c[0] as f64 + 1.0 * c[1] as f64 + 2.0 * (c[0] as f64 * c[1] as f64) + noise
            })
            .collect();
        (dm, y)
    }

    #[test]
    fn planted_effects_are_ranked_correctly() {
        let (dm, y) = planted();
        let at = attribute_axis(&dm, "perf", &y);
        assert_eq!(at.axis, "perf");
        assert_eq!(at.n, 12);
        assert!(at.fit.is_some());
        assert!(at.r_squared() > 0.99, "r2 = {}", at.r_squared());
        let by_name = |n: &str| at.dims.iter().find(|d| d.name == n).unwrap();
        let (a, b, c) = (by_name("A"), by_name("B"), by_name("C"));
        // A dominates, B matters, C explains essentially nothing.
        assert!(a.eta_sq > 0.8, "A eta {}", a.eta_sq);
        assert!(a.partial_eta_sq > b.partial_eta_sq);
        assert!(b.partial_eta_sq > c.partial_eta_sq);
        assert!(c.eta_sq < 0.01, "C eta {}", c.eta_sq);
        assert!(a.p_value < 0.001);
        assert!(c.p_value > 0.05);
        // Effect sizes live in [0,1].
        for d in &at.dims {
            assert!((0.0..=1.0).contains(&d.eta_sq));
            assert!((0.0..=1.0).contains(&d.partial_eta_sq));
        }
    }

    #[test]
    fn interaction_scan_finds_the_planted_pair() {
        let (dm, y) = planted();
        let scan = interaction_scan(&dm, &y);
        assert_eq!(scan.len(), 3); // (A,B), (A,C), (B,C)
        assert_eq!((scan[0].dim_a.as_str(), scan[0].dim_b.as_str()), ("A", "B"));
        assert!(scan[0].delta_r2 > scan[1].delta_r2);
        assert!(scan[0].f_stat > 1.0);
        // The non-planted pairs explain essentially nothing extra.
        assert!(scan[2].delta_r2 < 0.01);
    }

    #[test]
    fn level_estimate_reads_the_fit() {
        let (dm, y) = planted();
        let at = attribute_axis(&dm, "perf", &y);
        // Baseline level estimate is zero by construction.
        assert_eq!(at.level_estimate(&dm, 0, 0), Some(0.0));
        // A=a2 vs A=a1 differ by ~10 (plus half the interaction mass).
        let a1 = at.level_estimate(&dm, 0, 1).unwrap();
        let a2 = at.level_estimate(&dm, 0, 2).unwrap();
        assert!(a2 > a1 + 5.0, "a1 {a1} a2 {a2}");
        // Absent level on a collapsed subset → None.
        let sub = DesignMatrix::build(
            &DesignSpace::new(
                "s",
                vec![Dimension::new(
                    "A",
                    vec!["a0".into(), "a1".into(), "a2".into()],
                )],
            ),
            &[1, 2],
            1,
        );
        let ys = [1.0, 2.0];
        let sub_at = attribute_axis(&sub, "x", &ys);
        assert!(sub_at.level_estimate(&sub, 0, 0).is_none());
    }

    #[test]
    fn tiny_subsets_fall_back_to_one_way_eta() {
        // Two observations cannot support a regression, but the one-way
        // η² is still defined.
        let s = DesignSpace::new(
            "s",
            vec![Dimension::new("A", vec!["a0".into(), "a1".into()])],
        );
        let dm = DesignMatrix::build(&s, &[0, 1], 1);
        let at = attribute_axis(&dm, "x", &[0.0, 1.0]);
        assert!(at.fit.is_none());
        assert!(at.r_squared().is_nan());
        assert_eq!(at.dims[0].eta_sq, 1.0);
        assert!(at.dims[0].partial_eta_sq.is_nan());
    }

    #[test]
    fn constant_response_attributes_nothing() {
        let (dm, _) = planted();
        let y = vec![3.25; dm.n()];
        let at = attribute_axis(&dm, "flat", &y);
        for d in &at.dims {
            assert_eq!(d.eta_sq, 0.0);
        }
    }
}
