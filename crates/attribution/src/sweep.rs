//! The stamped-CSV cache for derived attribution tables.
//!
//! An attribution table is derived — cheap to recompute from a cached
//! sweep — but it is a *published artifact* (`experiments attribution`
//! quotes it, downstream tooling reads it), so it carries the same
//! self-invalidating stamp discipline as the sweeps themselves: one file
//! per (domain, response, scale) at
//! `results/attrib-<domain>-<response>-<scale>.csv`, stamped with the
//! base sweep key re-fingerprinted through the `attrib=` field. The
//! fingerprint hashes the *source sweeps' stamps* plus the model
//! specification ([`SPEC_VERSION`]), so a recomputed underlying sweep, a
//! different response, or a changed attribution model all mismatch and
//! recompute — while PRA, attack and evo stamps live in different files
//! under different fingerprint fields and stay untouched.

use crate::design::DesignMatrix;
use crate::fit::{attribute_axis, AxisAttribution, DimEffect};
use crate::response::ResponseSurface;
use dsa_core::cache::{read_stamped, write_stamped, SweepKey};
use dsa_core::domain::{fnv1a, DynDomain};
use dsa_core::results::{quote_csv, split_csv};
use std::path::{Path, PathBuf};

/// The attribution model specification, hashed into every table's
/// fingerprint: editing the model (different coding, different effect
/// sizes) invalidates cached tables computed under the old one.
pub const SPEC_VERSION: &str = "attrib v1 dummy-main-effects oneway-eta partial-eta nested-F";

/// One axis' cached summary: fit quality plus per-dimension effects.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSummary {
    /// Axis name.
    pub axis: String,
    /// Number of observations.
    pub n: usize,
    /// R² of the main-effects model (`NaN` when infeasible).
    pub r2: f64,
    /// Adjusted R² of the main-effects model (`NaN` when infeasible).
    pub adj_r2: f64,
    /// Per-dimension effects, in space-descriptor order.
    pub dims: Vec<DimEffect>,
}

impl From<&AxisAttribution> for AxisSummary {
    fn from(at: &AxisAttribution) -> Self {
        Self {
            axis: at.axis.clone(),
            n: at.n,
            r2: at.r_squared(),
            adj_r2: at.adj_r_squared(),
            dims: at.dims.clone(),
        }
    }
}

/// A derived attribution table with its key and provenance.
#[derive(Debug, Clone)]
pub struct AttribTable {
    /// The key the table was computed (or validated) under.
    pub key: SweepKey,
    /// Response-surface name (part of the cache file name).
    pub response: String,
    /// One summary per response axis.
    pub axes: Vec<AxisSummary>,
    /// Whether this table was served from the cache.
    pub from_cache: bool,
}

/// The `attrib=` fingerprint of a surface under the current model
/// specification. Never 0, so an attribution stamp can never validate a
/// plain sweep.
#[must_use]
pub fn fingerprint(surface: &ResponseSurface) -> u64 {
    let axis_names: Vec<&str> = surface.axes.iter().map(|(n, _)| n.as_str()).collect();
    let canon = format!(
        "{SPEC_VERSION}|response={}|axes={axis_names:?}|sources:\n{}",
        surface.response, surface.sources
    );
    fnv1a(canon.as_bytes()).max(1)
}

/// Runs the attribution of every axis of a surface over a prebuilt
/// design matrix — the uncached core [`AttribTable::load_or_compute`]
/// and the CLI's fit/navigate paths share.
#[must_use]
pub fn attribute_surface(dm: &DesignMatrix, surface: &ResponseSurface) -> Vec<AxisAttribution> {
    surface
        .axes
        .iter()
        .map(|(name, y)| attribute_axis(dm, name, y))
        .collect()
}

impl AttribTable {
    /// The cache file path for a (domain, response, scale) triple.
    #[must_use]
    pub fn cache_path(out_dir: &Path, domain: &str, response: &str, scale: &str) -> PathBuf {
        out_dir.join(format!("attrib-{domain}-{response}-{scale}.csv"))
    }

    /// This table's own cache file path.
    #[must_use]
    pub fn path(&self, out_dir: &Path) -> PathBuf {
        Self::cache_path(out_dir, &self.key.domain, &self.response, &self.key.scale)
    }

    /// Builds the table from attributions already computed over the
    /// surface — for callers that need the live fits anyway (interaction
    /// scans, navigators) and must not pay for fitting twice.
    #[must_use]
    pub fn from_axes(surface: &ResponseSurface, axes: &[AxisAttribution]) -> Self {
        Self {
            key: surface.base.clone().with_attrib(fingerprint(surface)),
            response: surface.response.clone(),
            axes: axes.iter().map(AxisSummary::from).collect(),
            from_cache: false,
        }
    }

    /// Computes the table from a surface (no caching).
    #[must_use]
    pub fn compute(domain: &dyn DynDomain, surface: &ResponseSurface, threads: usize) -> Self {
        let dm = DesignMatrix::build(domain.space(), &surface.rows, threads);
        Self::from_axes(surface, &attribute_surface(&dm, surface))
    }

    /// Attempts to load a cached table matching `key`. Returns `Ok(None)`
    /// for every "recompute, don't trust" case: missing file, missing or
    /// mismatched stamp (any other fingerprint — a changed source sweep,
    /// response set or model spec), or an empty body.
    ///
    /// # Errors
    ///
    /// Returns an error when the stamp matches but the body cannot be
    /// parsed (corruption must surface, not be silently recomputed over).
    pub fn load(key: &SweepKey, response: &str, out_dir: &Path) -> Result<Option<Self>, String> {
        let path = Self::cache_path(out_dir, &key.domain, response, &key.scale);
        let Some(body) = read_stamped(&path, key)? else {
            return Ok(None);
        };
        let axes = parse_body(&body)
            .map_err(|e| format!("corrupt attribution cache {}: {e}", path.display()))?;
        if axes.is_empty() {
            return Ok(None);
        }
        Ok(Some(Self {
            key: key.clone(),
            response: response.to_string(),
            axes,
            from_cache: true,
        }))
    }

    /// Loads the cached table for (domain, surface), or computes and
    /// caches it.
    ///
    /// # Errors
    ///
    /// Returns an error when a matching cache exists but is corrupt, or
    /// the cache cannot be written.
    pub fn load_or_compute(
        domain: &dyn DynDomain,
        surface: &ResponseSurface,
        threads: usize,
        out_dir: &Path,
    ) -> Result<Self, String> {
        let key = surface.base.clone().with_attrib(fingerprint(surface));
        if let Some(cached) = Self::load(&key, &surface.response, out_dir)? {
            return Ok(cached);
        }
        let table = Self::compute(domain, surface, threads);
        table.store(out_dir)?;
        Ok(table)
    }

    /// Writes the table to its cache path via
    /// [`dsa_core::cache::write_stamped`] (atomic temp sibling + rename).
    ///
    /// # Errors
    ///
    /// Returns an error when the directory or file cannot be written.
    pub fn store(&self, out_dir: &Path) -> Result<PathBuf, String> {
        let path = self.path(out_dir);
        write_stamped(&path, &self.key, &self.to_csv())?;
        Ok(path)
    }

    /// The body CSV (no stamp line): one row per (axis, dimension).
    /// `{}` on f64 prints the shortest representation that parses back
    /// bit-identically (`NaN` round-trips as `NaN`), so cached and fresh
    /// tables never diverge.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "axis,dimension,levels,eta_sq,partial_eta_sq,f_stat,p_value,r2,adj_r2,n\n",
        );
        for axis in &self.axes {
            for d in &axis.dims {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{}\n",
                    quote_csv(&axis.axis),
                    quote_csv(&d.name),
                    d.levels,
                    d.eta_sq,
                    d.partial_eta_sq,
                    d.f_stat,
                    d.p_value,
                    axis.r2,
                    axis.adj_r2,
                    axis.n
                ));
            }
        }
        out
    }
}

/// Parses the body CSV back into axis summaries.
fn parse_body(body: &str) -> Result<Vec<AxisSummary>, String> {
    let mut lines = body.lines();
    let header = lines.next().ok_or("empty body")?;
    if header != "axis,dimension,levels,eta_sq,partial_eta_sq,f_stat,p_value,r2,adj_r2,n" {
        return Err(format!("unexpected header: {header}"));
    }
    let mut axes: Vec<AxisSummary> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() != 10 {
            return Err(format!("line {}: expected 10 fields", lineno + 2));
        }
        let num = |s: &str, what: &str| {
            s.parse::<f64>()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 2))
        };
        let int = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 2))
        };
        let effect = DimEffect {
            name: fields[1].clone(),
            levels: int(&fields[2], "levels")?,
            eta_sq: num(&fields[3], "eta_sq")?,
            partial_eta_sq: num(&fields[4], "partial_eta_sq")?,
            f_stat: num(&fields[5], "f_stat")?,
            p_value: num(&fields[6], "p_value")?,
        };
        let (r2, adj_r2, n) = (
            num(&fields[7], "r2")?,
            num(&fields[8], "adj_r2")?,
            int(&fields[9], "n")?,
        );
        match axes.last_mut() {
            Some(last) if last.axis == fields[0] => last.dims.push(effect),
            _ => axes.push(AxisSummary {
                axis: fields[0].clone(),
                n,
                r2,
                adj_r2,
                dims: vec![effect],
            }),
        }
    }
    Ok(axes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake() -> AttribTable {
        AttribTable {
            key: SweepKey {
                domain: "toy".into(),
                space_hash: 0xABC,
                scale: "smoke".into(),
                params: 0x123,
                seed: 7,
                len: 4,
                attack: 0,
                evo: 0,
                attrib: 0xA11B,
            },
            response: "pra".into(),
            axes: vec![
                AxisSummary {
                    axis: "performance".into(),
                    n: 4,
                    r2: 0.91,
                    adj_r2: 0.89,
                    dims: vec![
                        DimEffect {
                            name: "A, with comma".into(),
                            levels: 3,
                            eta_sq: 0.5,
                            partial_eta_sq: 0.75,
                            f_stat: 12.5,
                            p_value: 0.001,
                        },
                        DimEffect {
                            name: "B".into(),
                            levels: 2,
                            eta_sq: 0.1,
                            partial_eta_sq: f64::NAN,
                            f_stat: f64::NAN,
                            p_value: f64::NAN,
                        },
                    ],
                },
                AxisSummary {
                    axis: "robustness".into(),
                    n: 4,
                    r2: f64::NAN,
                    adj_r2: f64::NAN,
                    dims: vec![DimEffect {
                        name: "A, with comma".into(),
                        levels: 3,
                        eta_sq: 0.25,
                        partial_eta_sq: f64::NAN,
                        f_stat: f64::NAN,
                        p_value: f64::NAN,
                    }],
                },
            ],
            from_cache: false,
        }
    }

    #[test]
    fn csv_body_roundtrips_including_nans() {
        let t = fake();
        let parsed = parse_body(&t.to_csv()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].axis, "performance");
        assert_eq!(parsed[0].dims.len(), 2);
        assert_eq!(parsed[0].dims[0].name, "A, with comma");
        assert_eq!(parsed[0].dims[0].partial_eta_sq, 0.75);
        assert!(parsed[0].dims[1].partial_eta_sq.is_nan());
        assert!(parsed[1].r2.is_nan());
        assert_eq!(parsed[1].n, 4);
        // A re-serialized parse is byte-identical.
        let round = AttribTable {
            axes: parsed,
            ..t.clone()
        };
        assert_eq!(round.to_csv(), t.to_csv());
    }

    #[test]
    fn parse_body_rejects_garbage() {
        assert!(parse_body("").is_err());
        assert!(parse_body("wrong,header\n").is_err());
        let header = "axis,dimension,levels,eta_sq,partial_eta_sq,f_stat,p_value,r2,adj_r2,n\n";
        assert!(parse_body(&format!("{header}a,b,2,0.5\n")).is_err());
        assert!(parse_body(&format!("{header}a,b,x,0.5,0.5,1,0.1,0.9,0.9,4\n")).is_err());
        assert!(parse_body(&format!("{header}a,b,2,zz,0.5,1,0.1,0.9,0.9,4\n")).is_err());
    }

    #[test]
    fn cache_file_name_embeds_domain_response_scale() {
        let t = fake();
        assert_eq!(
            t.path(Path::new("results")),
            PathBuf::from("results/attrib-toy-pra-smoke.csv")
        );
    }
}
