//! Dummy-coded design matrices over generic design spaces.
//!
//! The attribution regressions treat every design dimension as a
//! categorical variable: each dimension contributes one indicator column
//! per non-baseline *present* level (the paper's "substituted by dummy
//! variables" treatment of Table 3, generalized from the swarm-specific
//! encoder in `dsa-bench::regress` to any [`DesignSpace`]). The encoder
//! works on an arbitrary row subset — the full space for PRA and attack
//! surfaces, a candidate set for evolutionary surfaces — collapsing
//! absent levels and dropping dimensions that do not vary within the
//! subset, so the matrix is always free of structurally-zero columns.
//!
//! The row decode goes through
//! [`dsa_core::parallel::parallel_map_indexed`], so paper-scale builds
//! parallelize while staying bit-identical across thread counts (each
//! row's coordinates are a pure function of its index).

use dsa_core::parallel::parallel_map_indexed;
use dsa_core::space::DesignSpace;
use dsa_stats::encode::NamedColumn;
use std::ops::Range;

/// How one design dimension is coded in a [`DesignMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimCode {
    /// Position of the dimension in the space descriptor.
    pub dim: usize,
    /// Dimension name.
    pub name: String,
    /// Original level indices present among the rows, in enumeration
    /// order; the first entry is the baseline and has no column.
    pub levels: Vec<usize>,
    /// The dimension's column range inside [`DesignMatrix::columns`]
    /// (`levels.len() − 1` indicator columns).
    pub cols: Range<usize>,
}

impl DimCode {
    /// The column position (inside the matrix's column list) coding
    /// original level `level`, or `None` for the baseline level and for
    /// levels absent from the row subset.
    #[must_use]
    pub fn column_of(&self, level: usize) -> Option<usize> {
        let pos = self.levels.iter().position(|&l| l == level)?;
        if pos == 0 {
            return None;
        }
        Some(self.cols.start + pos - 1)
    }
}

/// A dummy-coded design matrix over a row subset of a design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMatrix {
    /// Space indices of the observations, in row order.
    pub rows: Vec<usize>,
    /// Per-row space coordinates (same order as `rows`).
    pub coords: Vec<Vec<usize>>,
    /// Coded dimensions — only those with at least two present levels.
    pub dims: Vec<DimCode>,
    /// The indicator columns, dimension-major, named `"Dim=Level"`.
    pub columns: Vec<NamedColumn>,
}

impl DesignMatrix {
    /// Builds the matrix for `rows` of `space`. `threads = 0` uses all
    /// cores; the result is bit-identical for every thread count.
    ///
    /// Traced as an `attrib.design` span; with metrics enabled, each
    /// row decode's latency lands in the `attrib.row_ns` histogram and
    /// the build's throughput in the `attrib.rows_per_sec` gauge.
    ///
    /// # Panics
    ///
    /// Panics when a row index lies outside the space.
    #[must_use]
    pub fn build(space: &DesignSpace, rows: &[usize], threads: usize) -> Self {
        let _design_span = dsa_obs::span("attrib.design");
        let started = dsa_obs::metrics_enabled().then(std::time::Instant::now);
        let coords = parallel_map_indexed(rows.len(), threads, |i| {
            let t0 = dsa_obs::metrics_enabled().then(std::time::Instant::now);
            let c = space.coords(rows[i]);
            if let Some(t0) = t0 {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                dsa_obs::observe("attrib.row_ns", ns);
            }
            c
        });
        if let Some(started) = started {
            let secs = started.elapsed().as_secs_f64();
            if secs > 0.0 {
                dsa_obs::gauge_set("attrib.rows_per_sec", rows.len() as f64 / secs);
            }
        }
        let mut dims = Vec::new();
        let mut columns = Vec::new();
        for (d, dim) in space.dimensions().iter().enumerate() {
            let mut seen = vec![false; dim.len()];
            for c in &coords {
                seen[c[d]] = true;
            }
            let present: Vec<usize> = (0..dim.len()).filter(|&l| seen[l]).collect();
            if present.len() < 2 {
                // The dimension does not vary within the subset: nothing
                // to attribute to it.
                continue;
            }
            let start = columns.len();
            for &level in &present[1..] {
                let values: Vec<f64> = coords
                    .iter()
                    .map(|c| f64::from(u8::from(c[d] == level)))
                    .collect();
                columns.push(NamedColumn::new(
                    format!("{}={}", dim.name, dim.levels[level]),
                    values,
                ));
            }
            dims.push(DimCode {
                dim: d,
                name: dim.name.clone(),
                levels: present,
                cols: start..columns.len(),
            });
        }
        Self {
            rows: rows.to_vec(),
            coords,
            dims,
            columns,
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// The main-effect columns with one coded dimension's block removed —
    /// the reduced model of that dimension's nested-model test.
    #[must_use]
    pub fn without(&self, coded_dim: usize) -> Vec<NamedColumn> {
        let drop = &self.dims[coded_dim].cols;
        self.columns
            .iter()
            .enumerate()
            .filter(|(j, _)| !drop.contains(j))
            .map(|(_, c)| c.clone())
            .collect()
    }

    /// The main-effect columns plus the pairwise product columns of two
    /// coded dimensions — the augmented model of the interaction scan.
    /// Returns the columns and the number of interaction columns added.
    #[must_use]
    pub fn with_interaction(&self, a: usize, b: usize) -> (Vec<NamedColumn>, usize) {
        let mut out = self.columns.clone();
        let before = out.len();
        for ca in self.dims[a].cols.clone() {
            for cb in self.dims[b].cols.clone() {
                let values: Vec<f64> = self.columns[ca]
                    .values
                    .iter()
                    .zip(&self.columns[cb].values)
                    .map(|(x, y)| x * y)
                    .collect();
                out.push(NamedColumn::new(
                    format!("{}×{}", self.columns[ca].name, self.columns[cb].name),
                    values,
                ));
            }
        }
        let added = out.len() - before;
        (out, added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::space::Dimension;

    fn space() -> DesignSpace {
        DesignSpace::new(
            "t",
            vec![
                Dimension::new("A", vec!["a0".into(), "a1".into(), "a2".into()]),
                Dimension::new("B", vec!["b0".into(), "b1".into()]),
            ],
        )
    }

    #[test]
    fn full_space_codes_every_non_baseline_level() {
        let s = space();
        let rows: Vec<usize> = s.indices().collect();
        let dm = DesignMatrix::build(&s, &rows, 1);
        assert_eq!(dm.n(), 6);
        assert_eq!(dm.dims.len(), 2);
        let names: Vec<&str> = dm.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["A=a1", "A=a2", "B=b1"]);
        // Row 3 = coords [1, 1]: A=a1 and B=b1 indicators set.
        assert_eq!(dm.coords[3], vec![1, 1]);
        assert_eq!(dm.columns[0].values[3], 1.0);
        assert_eq!(dm.columns[1].values[3], 0.0);
        assert_eq!(dm.columns[2].values[3], 1.0);
        // Column lookup: baseline and absent levels have no column.
        assert_eq!(dm.dims[0].column_of(0), None);
        assert_eq!(dm.dims[0].column_of(1), Some(0));
        assert_eq!(dm.dims[0].column_of(2), Some(1));
        assert_eq!(dm.dims[1].column_of(1), Some(2));
    }

    #[test]
    fn subset_collapses_absent_levels_and_constant_dims() {
        let s = space();
        // Rows 2 = [1,0] and 4 = [2,0]: B never varies, A level 0 absent.
        let dm = DesignMatrix::build(&s, &[2, 4], 1);
        assert_eq!(dm.dims.len(), 1);
        assert_eq!(dm.dims[0].name, "A");
        assert_eq!(dm.dims[0].levels, vec![1, 2]);
        // a1 is the subset's baseline; only a2 gets a column.
        let names: Vec<&str> = dm.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["A=a2"]);
        assert_eq!(dm.dims[0].column_of(1), None);
        assert_eq!(dm.dims[0].column_of(2), Some(0));
        assert_eq!(dm.dims[0].column_of(0), None);
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let s = space();
        let rows: Vec<usize> = s.indices().collect();
        assert_eq!(
            DesignMatrix::build(&s, &rows, 1),
            DesignMatrix::build(&s, &rows, 8)
        );
    }

    #[test]
    fn reduced_and_interaction_column_sets() {
        let s = space();
        let rows: Vec<usize> = s.indices().collect();
        let dm = DesignMatrix::build(&s, &rows, 1);
        let without_a = dm.without(0);
        assert_eq!(without_a.len(), 1);
        assert_eq!(without_a[0].name, "B=b1");
        let (with_ab, added) = dm.with_interaction(0, 1);
        assert_eq!(added, 2);
        assert_eq!(with_ab.len(), 5);
        assert_eq!(with_ab[3].name, "A=a1×B=b1");
        // The product column is the AND of its factors.
        for r in 0..dm.n() {
            assert_eq!(
                with_ab[3].values[r],
                dm.columns[0].values[r] * dm.columns[2].values[r]
            );
        }
    }
}
