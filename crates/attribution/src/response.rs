//! Response surfaces: the measured outcomes a regression can explain.
//!
//! A [`ResponseSurface`] is a set of rows (space indices) with one or
//! more named response axes over them, plus the provenance needed to
//! fingerprint any table derived from it. Three builders cover every
//! surface the workspace measures:
//!
//! * [`pra_surface`] — the PRA cube ([`dsa_core::cache::DomainSweep`]):
//!   axes `performance`, `robustness`, `aggressiveness` over the full
//!   space;
//! * [`attack_surface`] — robustness under adversary budget
//!   ([`dsa_attacks::sweep::AttackSweep`]): one axis per attack model
//!   (each protocol's mean survival rate over the budget grid);
//! * [`evolution_surface`] — evolutionary outcomes
//!   ([`dsa_evolution::sweep::EvoSweep`] + analysis): axes `selfpay`,
//!   `basin`, `fixation` over the candidate set.
//!
//! Every builder goes through the sweeps' own stamped caches, so a warm
//! `results/` directory serves attributions without re-simulating
//! anything, and the concatenated source stamps feed the derived table's
//! `attrib=` fingerprint — a changed underlying sweep self-invalidates
//! everything built on it.

use dsa_attacks::model::AttackModel;
use dsa_attacks::sweep::{AttackConfig, AttackSweep};
use dsa_core::cache::{DomainSweep, SweepKey};
use dsa_core::domain::{DynDomain, Effort};
use dsa_core::pra::PraConfig;
use dsa_evolution::payoff::EvoConfig;
use dsa_evolution::sweep::EvoSweep;
use std::path::Path;
use std::sync::Arc;

/// The response-surface kinds the attribution subsystem understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// The plain PRA cube.
    Pra,
    /// Robustness under attacker budget, one axis per attack model.
    Attack,
    /// Evolutionary outcomes over the candidate set.
    Evolution,
}

impl ResponseKind {
    /// All kinds, cheapest surface first.
    pub const ALL: [ResponseKind; 3] = [
        ResponseKind::Pra,
        ResponseKind::Attack,
        ResponseKind::Evolution,
    ];

    /// The kind's canonical (CLI and filename) name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Pra => "pra",
            Self::Attack => "attack",
            Self::Evolution => "evolution",
        }
    }

    /// Looks a kind up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A measured response surface, ready for attribution.
#[derive(Debug, Clone)]
pub struct ResponseSurface {
    /// Surface kind name (`pra`, `attack`, `evolution`).
    pub response: String,
    /// Space indices of the observations, in row order.
    pub rows: Vec<usize>,
    /// Named response axes, each one value per row.
    pub axes: Vec<(String, Vec<f64>)>,
    /// The base sweep key (attack/evo/attrib fields zeroed, `len` =
    /// row count) a derived table re-stamps with its own fingerprint.
    pub base: SweepKey,
    /// Concatenated stamps of every source sweep — the provenance the
    /// `attrib=` fingerprint hashes.
    pub sources: String,
    /// Whether every source sweep was served from its cache.
    pub from_cache: bool,
}

/// Builds the PRA surface of a domain (cached under
/// `results/pra-<domain>-<scale>.csv`).
///
/// # Errors
///
/// Returns an error when the sweep cache is corrupt or unwritable.
pub fn pra_surface(
    domain: &dyn DynDomain,
    effort: Effort,
    config: &PraConfig,
    scale: &str,
    out_dir: &Path,
) -> Result<ResponseSurface, String> {
    let sweep = DomainSweep::load_or_compute(domain, effort, config, scale, out_dir)?;
    let mut base = sweep.key.clone();
    base.attack = 0;
    base.evo = 0;
    base.attrib = 0;
    Ok(ResponseSurface {
        response: ResponseKind::Pra.name().to_string(),
        rows: (0..sweep.results.len()).collect(),
        axes: vec![
            ("performance".into(), sweep.results.performance.clone()),
            ("robustness".into(), sweep.results.robustness.clone()),
            (
                "aggressiveness".into(),
                sweep.results.aggressiveness.clone(),
            ),
        ],
        sources: sweep.key.meta_line(),
        base,
        from_cache: sweep.from_cache,
    })
}

/// Builds the robustness-under-attack surface of a domain: one axis per
/// model in `models`, each protocol's survival rate averaged over the
/// budget grid (cached under
/// `results/attack-<domain>-<model>-<scale>.csv`).
///
/// # Errors
///
/// Returns an error when `models` is empty or a sweep cache is corrupt
/// or unwritable.
pub fn attack_surface(
    domain: &dyn DynDomain,
    models: &[Arc<dyn AttackModel>],
    effort: Effort,
    config: &AttackConfig,
    scale: &str,
    out_dir: &Path,
) -> Result<ResponseSurface, String> {
    let first = models
        .first()
        .ok_or("attack surface needs at least one attack model")?;
    let mut base = config.key(domain, &**first, scale, effort);
    base.attack = 0;
    let mut axes = Vec::with_capacity(models.len());
    let mut sources = String::new();
    let mut from_cache = true;
    for model in models {
        let sweep = AttackSweep::load_or_compute(domain, &**model, effort, config, scale, out_dir)?;
        from_cache &= sweep.from_cache;
        if !sources.is_empty() {
            sources.push('\n');
        }
        sources.push_str(&sweep.key.meta_line());
        // The per-protocol response: mean survival over the budget grid.
        let budgets = sweep.robustness.len().max(1) as f64;
        let mut mean = vec![0.0f64; domain.size()];
        for row in &sweep.robustness {
            for (m, &r) in mean.iter_mut().zip(row) {
                *m += r / budgets;
            }
        }
        axes.push((model.name().to_string(), mean));
    }
    Ok(ResponseSurface {
        response: ResponseKind::Attack.name().to_string(),
        rows: (0..domain.size()).collect(),
        axes,
        base,
        sources,
        from_cache,
    })
}

/// Builds the evolutionary-outcome surface of a domain over `candidates`
/// (matrix cached under `results/evo-<domain>-<scale>.csv`): per-candidate
/// homogeneous payoff (`selfpay`), basin-of-attraction share (`basin`)
/// and finite-population fixation probability (`fixation`).
///
/// The surface covers only the candidate rows, so the attribution layer
/// typically falls back to one-way effect sizes here — the full
/// regression is under-determined on a handful of candidates, and that
/// degradation is reported, not hidden.
///
/// # Errors
///
/// Returns an error when the matrix cache is corrupt or unwritable.
pub fn evolution_surface(
    domain: &dyn DynDomain,
    candidates: &[usize],
    effort: Effort,
    cfg: &EvoConfig,
    scale: &str,
    out_dir: &Path,
) -> Result<ResponseSurface, String> {
    let sweep = EvoSweep::load_or_compute(domain, candidates, effort, cfg, scale, out_dir)?;
    let analysis = dsa_evolution::analyze(&sweep.matrix, cfg);
    let selfpay: Vec<f64> = (0..sweep.matrix.len())
        .map(|i| sweep.matrix.payoff[i][i])
        .collect();
    let mut base = sweep.key.clone();
    base.evo = 0;
    Ok(ResponseSurface {
        response: ResponseKind::Evolution.name().to_string(),
        rows: candidates.to_vec(),
        axes: vec![
            ("selfpay".into(), selfpay),
            ("basin".into(), analysis.basin_share),
            ("fixation".into(), analysis.fixation),
        ],
        base,
        sources: sweep.key.meta_line(),
        from_cache: sweep.from_cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_kind_names_roundtrip() {
        for kind in ResponseKind::ALL {
            assert_eq!(ResponseKind::by_name(kind.name()), Some(kind));
        }
        assert!(ResponseKind::by_name("nonsense").is_none());
    }
}
