//! Integration tests of the attribution subsystem against real domains
//! (gossip — small enough to sweep inside a test) and its stamped cache.

use dsa_attribution::{
    attribute_surface, evolution_surface, fingerprint, navigate, pra_surface, AttribTable,
    DesignMatrix, ResponseKind,
};
use dsa_core::cache::read_stamped;
use dsa_core::domain::Effort;
use dsa_core::pra::PraConfig;
use dsa_core::tournament::OpponentSampling;
use dsa_evolution::payoff::EvoConfig;
use std::path::PathBuf;

fn smoke_pra() -> PraConfig {
    PraConfig {
        performance_runs: 1,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(4),
        threads: 0,
        seed: 0x5EED,
        ..PraConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsa-attrib-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn pra_attribution_end_to_end_with_cache_and_navigator() {
    let dir = temp_dir("e2e");
    let domain = dsa_gossip::adapter::register();
    let cfg = smoke_pra();
    let surface = pra_surface(&*domain, Effort::Smoke, &cfg, "smoke", &dir).expect("surface");
    assert_eq!(surface.response, "pra");
    assert_eq!(surface.rows.len(), domain.size());
    assert_eq!(surface.axes.len(), 3);

    // The derived table computes, caches, and reloads bit-identically.
    let fresh = AttribTable::load_or_compute(&*domain, &surface, 0, &dir).expect("fresh");
    assert!(!fresh.from_cache);
    assert!(dir.join("attrib-gossip-pra-smoke.csv").exists());
    let cached = AttribTable::load_or_compute(&*domain, &surface, 0, &dir).expect("cached");
    assert!(cached.from_cache);
    assert_eq!(cached.to_csv(), fresh.to_csv());
    assert_eq!(cached.key, fresh.key);

    // Per-axis R² is reported and per-dimension effects are sane: the
    // full 108-protocol factorial supports the complete regression.
    for axis in &fresh.axes {
        assert_eq!(axis.n, domain.size());
        assert!(axis.r2.is_finite(), "axis {} has no R²", axis.axis);
        assert!((0.0..=1.0).contains(&axis.r2));
        assert_eq!(axis.dims.len(), domain.space().dimensions().len());
        for d in &axis.dims {
            assert!((0.0..=1.0).contains(&d.eta_sq), "{}: {d:?}", axis.axis);
            assert!((0.0..=1.0).contains(&d.partial_eta_sq));
            assert!(d.f_stat >= 0.0);
            assert!((0.0..=1.0).contains(&d.p_value));
        }
    }

    // The navigator proposes flips from a preset and verifies them
    // against the true sweep values (full-space surface: no NaNs).
    let dm = DesignMatrix::build(domain.space(), &surface.rows, 0);
    let axes = attribute_surface(&dm, &surface);
    let (perf, rob) = (&axes[0], &axes[1]);
    let start = domain.parse("lazy").expect("preset");
    let out = navigate(
        domain.space(),
        &dm,
        perf,
        Some(rob),
        &surface.axes[0].1,
        Some(&surface.axes[1].1),
        start,
        0.1,
        5,
    );
    for f in &out {
        assert!(f.predicted_improve > 0.0);
        assert!(f.actual_improve.is_finite());
        assert!(f.actual_guard.is_finite());
        assert_ne!(f.index, start);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn attribution_is_bit_identical_across_thread_counts() {
    let dir = temp_dir("threads");
    let domain = dsa_gossip::adapter::register();
    let cfg = smoke_pra();
    let surface = pra_surface(&*domain, Effort::Smoke, &cfg, "smoke", &dir).expect("surface");
    let one = AttribTable::compute(&*domain, &surface, 1);
    let eight = AttribTable::compute(&*domain, &surface, 8);
    assert_eq!(one.to_csv(), eight.to_csv());
    assert_eq!(one.key, eight.key);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changed_source_stamp_or_spec_self_invalidates() {
    let dir = temp_dir("stale");
    let domain = dsa_gossip::adapter::register();
    let cfg = smoke_pra();
    let surface = pra_surface(&*domain, Effort::Smoke, &cfg, "smoke", &dir).expect("surface");
    let table = AttribTable::load_or_compute(&*domain, &surface, 0, &dir).expect("table");

    // A surface whose source sweep was recomputed under another seed
    // produces a different fingerprint: the cached table must miss.
    let mut reseeded = surface.clone();
    reseeded.sources = reseeded.sources.replace("seed=", "seed=9");
    assert_ne!(fingerprint(&surface), fingerprint(&reseeded));
    let stale_key = surface.base.clone().with_attrib(fingerprint(&reseeded));
    assert!(AttribTable::load(&stale_key, "pra", &dir)
        .unwrap()
        .is_none());

    // The attribution stamp never validates a plain sweep key (and the
    // plain key never validates the attribution file).
    let plain = surface.base.clone();
    assert!(read_stamped(&table.path(&dir), &plain).unwrap().is_none());
    let sweep_path = plain.cache_path(&dir);
    assert!(read_stamped(&sweep_path, &table.key).unwrap().is_none());

    // A corrupt body under a matching stamp is a hard error.
    let path = table.path(&dir);
    let text = std::fs::read_to_string(&path).unwrap();
    let stamp = text.split_once('\n').unwrap().0;
    std::fs::write(
        &path,
        format!("{stamp}\naxis,dimension,levels,eta_sq,partial_eta_sq,f_stat,p_value,r2,adj_r2,n\nperf,A,x,0,0,0,0,0,0,4\n"),
    )
    .unwrap();
    assert!(AttribTable::load(&table.key, "pra", &dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evolution_surface_degrades_to_one_way_effects() {
    // Four gossip candidates cannot support the full regression; the
    // attribution must still produce bounded one-way effect sizes and
    // flag the missing fit as NaN R², not fabricate one.
    let dir = temp_dir("evo");
    let domain = dsa_gossip::adapter::register();
    let cfg = EvoConfig {
        encounter_runs: 1,
        basin_samples: 8,
        moran_trials: 20,
        ..EvoConfig::default()
    };
    let candidates = dsa_evolution::default_candidates(&*domain);
    let surface = evolution_surface(&*domain, &candidates, Effort::Smoke, &cfg, "smoke", &dir)
        .expect("surface");
    assert_eq!(surface.response, "evolution");
    assert_eq!(surface.rows, candidates);
    let names: Vec<&str> = surface.axes.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["selfpay", "basin", "fixation"]);
    let table = AttribTable::load_or_compute(&*domain, &surface, 0, &dir).expect("table");
    assert!(dir.join("attrib-gossip-evolution-smoke.csv").exists());
    for axis in &table.axes {
        assert_eq!(axis.n, candidates.len());
        for d in &axis.dims {
            assert!((0.0..=1.0).contains(&d.eta_sq));
        }
    }
    // The candidate subset is too small for the main-effects model.
    assert!(table.axes.iter().all(|a| a.r2.is_nan()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn response_kinds_resolve() {
    assert_eq!(ResponseKind::by_name("pra"), Some(ResponseKind::Pra));
    assert_eq!(ResponseKind::by_name("attack"), Some(ResponseKind::Attack));
    assert_eq!(
        ResponseKind::by_name("evolution"),
        Some(ResponseKind::Evolution)
    );
}
