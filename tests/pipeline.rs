//! End-to-end integration: design space → PRA quantification →
//! statistics → regression, across crates, at miniature scale.

use dsa_core::pra::{quantify, PraConfig};
use dsa_core::tournament::OpponentSampling;
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::engine::SimConfig;
use dsa_swarm::presets;
use dsa_swarm::protocol::SwarmProtocol;
use dsa_workloads::bandwidth::BandwidthDist;

fn mini_sim() -> SwarmSim {
    SwarmSim {
        config: SimConfig {
            peers: 24,
            rounds: 80,
            bandwidth: BandwidthDist::Piatek,
            ..SimConfig::default()
        },
    }
}

fn mini_config() -> PraConfig {
    PraConfig {
        performance_runs: 2,
        encounter_runs: 1,
        sampling: OpponentSampling::Exhaustive,
        threads: 0,
        seed: 99,
        ..PraConfig::default()
    }
}

#[test]
fn pra_separates_cooperators_from_freeriders() {
    let protocols = vec![
        presets::bittorrent(),
        presets::loyal_when_needed(),
        presets::freerider(),
    ];
    let results = quantify(&mini_sim(), &protocols, &mini_config());

    // Freerider: bottom performance and bottom robustness.
    assert!(results.performance[2] < results.performance[0]);
    assert!(results.performance[2] < results.performance[1]);
    assert!(results.robustness[2] <= results.robustness[0]);
    assert!(results.robustness[2] <= results.robustness[1]);
}

#[test]
fn csv_roundtrip_preserves_sweep() {
    let protocols = vec![presets::bittorrent(), presets::birds()];
    let results = quantify(&mini_sim(), &protocols, &mini_config());
    let names: Vec<String> = protocols.iter().map(|p| p.to_string()).collect();
    let csv = results.to_csv(Some(&names));
    let (back, back_names) = dsa_core::results::PraResults::from_csv(&csv).expect("parse");
    assert_eq!(back, results);
    assert_eq!(back_names, names);
}

#[test]
fn regression_runs_on_real_micro_sweep() {
    // A stride coprime to the space size (3270 = 2·3·5·109) walks through
    // all residues, so every dummy column varies and the design matrix
    // stays full-rank.
    let protocols: Vec<SwarmProtocol> = (0..120)
        .map(|i| SwarmProtocol::from_index((i * 41 + 7) % dsa_swarm::protocol::SPACE_SIZE))
        .collect();
    let results = quantify(&mini_sim(), &protocols, &mini_config());

    let cols = dsa_bench::regress::predictors(&protocols);
    let fit = dsa_stats::ols::fit(&cols, &results.performance).expect("fit");
    assert_eq!(fit.terms.len(), 13); // intercept + 12 predictors
    assert!(fit.r_squared.is_finite());
}

#[test]
fn search_agrees_with_sweep_on_micro_space() {
    // Hill-climb over a 2-dimension slice and verify it finds something
    // at least as good as the median of an exhaustive scan.
    let sim = mini_sim();
    let space = dsa_core::space::DesignSpace::new(
        "slice",
        vec![
            dsa_core::space::Dimension::new(
                "ranking",
                (0..6).map(|i| format!("I{}", i + 1)).collect(),
            ),
            dsa_core::space::Dimension::new("k", (1..=9).map(|k| k.to_string()).collect()),
        ],
    );
    let proto_at = |idx: usize| {
        let c = space.coords(idx);
        SwarmProtocol {
            ranking: dsa_swarm::protocol::Ranking::ALL[c[0]],
            partner_slots: (c[1] + 1) as u8,
            ..presets::bittorrent()
        }
    };
    let objective =
        |idx: usize| dsa_core::sim::EncounterSim::run_homogeneous(&sim, &proto_at(idx), 5);
    let all: Vec<f64> = space.indices().map(objective).collect();
    let median = dsa_stats::describe::median(&all);
    let found = dsa_core::search::hill_climb(&space, objective, 2, 30, 3);
    assert!(
        found.best_value >= median,
        "search {} below median {median}",
        found.best_value
    );
}
