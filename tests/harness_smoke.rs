//! Smoke tests of the experiment harness: every paper artifact's
//! generation path runs end-to-end at miniature scale and produces
//! plausible output.

use dsa_bench::scale::Scale;
use dsa_bench::{btfigs, gossipfig, nashdemo};
use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_gametheory::classes::ClassParams;
use dsa_workloads::bandwidth::BandwidthDist;

#[test]
fn section2_artifacts_render() {
    let s = nashdemo::fig1(10.0, 4.0);
    assert!(s.contains("BitTorrent Dilemma"));
    let s = nashdemo::table1(&ClassParams::example_swarm());
    assert!(s.contains("total"));
    let s = nashdemo::nash_analysis(&ClassParams::example_swarm());
    assert!(s.contains("Nash"));
}

#[test]
fn fig9_and_fig10_render_at_tiny_scale() {
    let cfg = BtConfig {
        bandwidth: BandwidthDist::Constant(32.0),
        ..BtConfig::tiny()
    };
    let s = btfigs::fig9(ClientKind::Birds, ClientKind::BitTorrent, 2, &cfg, 3);
    assert!(s.contains("0.50"));
    let s = btfigs::fig10(2, &cfg, 4);
    assert!(s.contains("Sort-S"));
}

#[test]
fn gossip_dsa_renders() {
    let dir = std::env::temp_dir().join(format!("dsa-harness-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = gossipfig::gossip_dsa(&Scale::smoke(), &dir).expect("gossip sweep");
    assert!(s.contains("108 protocols"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scales_exist_for_cli() {
    for name in ["smoke", "lab", "paper"] {
        assert!(Scale::by_name(name).is_some());
    }
}

#[test]
fn churn_experiment_runs_at_smoke_scale() {
    // The churn experiment re-runs the performance phase over the whole
    // 3270-protocol space; smoke scale keeps that tractable in a test.
    let mut scale = Scale::smoke();
    scale.sim.rounds = 25;
    scale.sim.peers = 16;
    scale.pra.performance_runs = 1;
    let s = dsa_bench::figures::churn_experiment(&scale);
    assert!(s.contains("churn=0.1"));
    assert!(s.contains("top performer"));
}
