//! Reproducibility guarantees across the whole stack: identical seeds
//! must yield identical results regardless of thread count, and distinct
//! seeds must actually vary.

use dsa_core::pra::{quantify, PraConfig};
use dsa_core::tournament::OpponentSampling;
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::engine::{run, SimConfig};
use dsa_swarm::presets;

fn sim() -> SwarmSim {
    SwarmSim {
        config: SimConfig {
            peers: 20,
            rounds: 60,
            ..SimConfig::default()
        },
    }
}

fn protocols() -> Vec<dsa_swarm::protocol::SwarmProtocol> {
    vec![
        presets::bittorrent(),
        presets::birds(),
        presets::loyal_when_needed(),
        presets::sort_s(),
    ]
}

#[test]
fn pra_is_thread_count_invariant() {
    let mk = |threads| PraConfig {
        performance_runs: 2,
        encounter_runs: 1,
        sampling: OpponentSampling::Exhaustive,
        threads,
        seed: 31337,
        ..PraConfig::default()
    };
    let one = quantify(&sim(), &protocols(), &mk(1));
    let many = quantify(&sim(), &protocols(), &mk(8));
    assert_eq!(one, many);
}

#[test]
fn pra_varies_with_seed() {
    let mk = |seed| PraConfig {
        performance_runs: 1,
        encounter_runs: 1,
        sampling: OpponentSampling::Exhaustive,
        threads: 0,
        seed,
        ..PraConfig::default()
    };
    let a = quantify(&sim(), &protocols(), &mk(1));
    let b = quantify(&sim(), &protocols(), &mk(2));
    assert_ne!(a.performance_raw, b.performance_raw);
}

#[test]
fn engine_bitwise_reproducible() {
    let cfg = SimConfig {
        peers: 30,
        rounds: 120,
        churn: dsa_workloads::churn::ChurnModel::PerRound { rate: 0.05 },
        ..SimConfig::default()
    };
    let a = run(&[presets::birds()], &vec![0; 30], &cfg, 777);
    let b = run(&[presets::birds()], &vec![0; 30], &cfg, 777);
    assert_eq!(a, b);
}

#[test]
fn reputation_engine_bitwise_reproducible() {
    // Same seed ⇒ bit-identical results for the third domain too, under
    // churn (whitewashing's blunt cousin) and an actual whitewasher in
    // the population.
    let cfg = dsa_reputation::engine::RepConfig {
        peers: 18,
        rounds: 60,
        churn: dsa_workloads::churn::ChurnModel::PerRound { rate: 0.05 },
        ..dsa_reputation::engine::RepConfig::default()
    };
    let protos = [
        dsa_reputation::presets::bartercast(),
        dsa_reputation::presets::whitewasher(),
    ];
    let assignment: Vec<usize> = (0..18).map(|i| usize::from(i >= 12)).collect();
    let a = dsa_reputation::engine::run(&protos, &assignment, &cfg, 777);
    let b = dsa_reputation::engine::run(&protos, &assignment, &cfg, 777);
    assert_eq!(a, b);
}

#[test]
fn reputation_pra_full_space_deterministic() {
    // The PRA quantification over the entire 288-protocol reputation
    // space is a pure function of the seed, thread count included.
    let protocols: Vec<dsa_reputation::protocol::RepProtocol> =
        dsa_reputation::protocol::RepProtocol::all().collect();
    assert!(protocols.len() >= 100);
    let sim = dsa_reputation::adapter::RepSim {
        config: dsa_reputation::engine::RepConfig {
            peers: 10,
            rounds: 20,
            ..dsa_reputation::engine::RepConfig::default()
        },
    };
    let mk = |threads| PraConfig {
        performance_runs: 1,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(4),
        threads,
        seed: 31337,
        ..PraConfig::default()
    };
    let one = quantify(&sim, &protocols, &mk(1));
    let many = quantify(&sim, &protocols, &mk(8));
    assert_eq!(one, many);
    // And the measures are sane: every value in [0,1], with the
    // free-rider family pinned to zero performance.
    assert!(one
        .performance
        .iter()
        .chain(&one.robustness)
        .chain(&one.aggressiveness)
        .all(|&x| (0.0..=1.0).contains(&x)));
    let freerider = dsa_reputation::presets::freerider().index();
    assert_eq!(one.performance_raw[freerider], 0.0);
}

#[test]
fn btsim_bitwise_reproducible() {
    let cfg = dsa_btsim::config::BtConfig::tiny();
    let kinds = vec![dsa_btsim::choker::ClientKind::LoyalWhenNeeded; cfg.leechers];
    let a = dsa_btsim::swarm::simulate(&kinds, &cfg, 55);
    let b = dsa_btsim::swarm::simulate(&kinds, &cfg, 55);
    assert_eq!(a, b);
}

#[test]
fn stratified_population_is_identical_across_seeds() {
    // With stratified bandwidth the capacity *multiset* must not depend
    // on the seed (only the placement does).
    let cfg = SimConfig {
        peers: 25,
        rounds: 10,
        ..SimConfig::default()
    };
    let mut a = run(&[presets::bittorrent()], &[0; 25], &cfg, 1).capacities;
    let mut b = run(&[presets::bittorrent()], &[0; 25], &cfg, 2).capacities;
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    assert_eq!(a, b);
}
