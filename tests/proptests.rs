//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use dsa_stats::ccdf::Ccdf;
use dsa_stats::describe;
use dsa_swarm::protocol::{SwarmProtocol, SPACE_SIZE};
use dsa_workloads::rng::Xoshiro256pp;
use dsa_workloads::sampling;
use dsa_workloads::seeds::SeedSeq;
use proptest::prelude::*;

proptest! {
    /// Lemire rejection sampling never exceeds its bound and hits the
    /// whole range.
    #[test]
    fn rng_below_respects_bound(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// next_f64 stays in the unit interval for arbitrary seeds.
    #[test]
    fn rng_f64_unit_interval(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..64 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// Seed-tree children never collide with each other for distinct
    /// indices (within a sampled window).
    #[test]
    fn seed_children_distinct(master in any::<u64>(), a in 0u64..5_000, b in 0u64..5_000) {
        prop_assume!(a != b);
        let root = SeedSeq::new(master);
        prop_assert_ne!(root.child(a).seed(), root.child(b).seed());
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in proptest::collection::vec(0u32..1000, 0..100)) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut original = v.clone();
        sampling::shuffle(&mut v, &mut rng);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }

    /// Partial sampling yields distinct, in-range indices of the right
    /// count.
    #[test]
    fn sample_indices_invariants(seed in any::<u64>(), n in 0usize..200, k in 0usize..250) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let s = sampling::sample_indices(n, k, &mut rng);
        prop_assert_eq!(s.len(), k.min(n));
        let set: std::collections::HashSet<usize> = s.iter().copied().collect();
        prop_assert_eq!(set.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// rank_indices returns a permutation ordered by the requested
    /// direction.
    #[test]
    fn rank_indices_sorted_permutation(values in proptest::collection::vec(-1e6f64..1e6, 0..60), asc in any::<bool>()) {
        let idx = sampling::rank_indices(&values, asc);
        prop_assert_eq!(idx.len(), values.len());
        let set: std::collections::HashSet<usize> = idx.iter().copied().collect();
        prop_assert_eq!(set.len(), idx.len());
        for w in idx.windows(2) {
            if asc {
                prop_assert!(values[w[0]] <= values[w[1]]);
            } else {
                prop_assert!(values[w[0]] >= values[w[1]]);
            }
        }
    }

    /// Every protocol index round-trips and canonicalization is
    /// idempotent.
    #[test]
    fn protocol_roundtrip(idx in 0usize..SPACE_SIZE) {
        let p = SwarmProtocol::from_index(idx);
        prop_assert_eq!(p.index(), idx);
        prop_assert_eq!(p.canonical(), p.canonical().canonical());
    }

    /// Quantiles are bounded by the sample extremes and monotone in q.
    #[test]
    fn quantile_bounded_monotone(xs in proptest::collection::vec(-1e9f64..1e9, 1..80), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let lo = describe::min(&xs);
        let hi = describe::max(&xs);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = describe::quantile(&xs, qa);
        let vb = describe::quantile(&xs, qb);
        prop_assert!(va >= lo - 1e-9 && vb <= hi + 1e-9);
        prop_assert!(va <= vb + 1e-9);
    }

    /// CCDF evaluates within [0,1], is 1 below the minimum and 0 at/above
    /// the maximum.
    #[test]
    fn ccdf_range_and_extremes(xs in proptest::collection::vec(-1e6f64..1e6, 1..60), probe in -1e7f64..1e7) {
        let c = Ccdf::of(&xs);
        let p = c.eval(probe);
        prop_assert!((0.0..=1.0).contains(&p));
        let lo = describe::min(&xs);
        let hi = describe::max(&xs);
        prop_assert_eq!(c.eval(lo - 1.0), 1.0);
        prop_assert_eq!(c.eval(hi), 0.0);
    }

    /// Unit normalization lands in [0,1] with the extremes attained.
    #[test]
    fn normalize_unit_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 2..60)) {
        let z = describe::normalize_unit(&xs);
        prop_assert!(z.iter().all(|v| (0.0..=1.0).contains(v)));
        let spread = describe::max(&xs) - describe::min(&xs);
        if spread > 0.0 {
            prop_assert!(z.contains(&0.0));
            prop_assert!(z.contains(&1.0));
        }
    }

    /// Pearson correlation is bounded and exactly ±1 on affine data.
    #[test]
    fn pearson_bounds(xs in proptest::collection::vec(-1e3f64..1e3, 3..50), a in -5.0f64..5.0, b in -100.0f64..100.0) {
        prop_assume!(a.abs() > 1e-6);
        // Require genuine variance in xs.
        let spread = describe::max(&xs) - describe::min(&xs);
        prop_assume!(spread > 1e-6);
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let r = dsa_stats::correlation::pearson(&xs, &ys);
        prop_assert!((r.abs() - 1.0).abs() < 1e-6, "r={}", r);
    }

    /// The cycle simulator never manufactures data: per-peer utility is
    /// bounded by the maximum capacity in the population.
    #[test]
    fn swarm_utility_bounded_by_capacity(seed in any::<u64>(), proto_idx in 0usize..SPACE_SIZE) {
        let cfg = dsa_swarm::engine::SimConfig {
            peers: 12,
            rounds: 25,
            bandwidth: dsa_workloads::bandwidth::BandwidthDist::Constant(8.0),
            ..dsa_swarm::engine::SimConfig::default()
        };
        let p = SwarmProtocol::from_index(proto_idx);
        let out = dsa_swarm::engine::run(&[p], &[0; 12], &cfg, seed);
        // Each peer can receive at most what everyone else uploads: with
        // equal capacities, inbound ≤ (n−1) × capacity; the practical
        // bound we assert is population conservation.
        let total_in: f64 = out.utilities.iter().sum::<f64>();
        prop_assert!(total_in <= 12.0 * 8.0 + 1e-9);
        prop_assert!(out.utilities.iter().all(|&u| u >= 0.0));
    }
}
