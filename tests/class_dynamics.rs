//! Cross-validation between the Section 2 theory and the Section 4
//! simulator: the analytical claims about bandwidth classes should be
//! visible in the cycle-based simulation dynamics.

use dsa_swarm::engine::{run, SimConfig};
use dsa_swarm::metrics::fast_slow_split;
use dsa_swarm::presets;
use dsa_workloads::bandwidth::BandwidthDist;

fn two_class_config() -> SimConfig {
    SimConfig {
        peers: 40,
        rounds: 300,
        bandwidth: BandwidthDist::TwoClass {
            fast: 100.0,
            slow: 10.0,
            fast_fraction: 0.5,
        },
        ..SimConfig::default()
    }
}

#[test]
fn bittorrent_clusters_by_class() {
    // §2.1: under TFT/fastest-first, fast peers keep their reciprocation
    // within the fast class ("the dominant strategy for fast peers is to
    // always defect on the slow peers") — so fast peers must earn a
    // disproportionate share of throughput.
    let cfg = two_class_config();
    let mut fast_adv = 0.0;
    for seed in 0..3 {
        let out = run(&[presets::bittorrent()], &vec![0; cfg.peers], &cfg, seed);
        let (fast, slow) = fast_slow_split(&out);
        fast_adv += fast / slow.max(1e-9);
    }
    fast_adv /= 3.0;
    assert!(
        fast_adv > 2.0,
        "fast/slow utility ratio {fast_adv} too small for class clustering"
    );
}

#[test]
fn birds_also_assorts_by_class() {
    // Birds peers deliberately stick to their own class; fast peers still
    // do better in absolute terms (their class has more capacity).
    let cfg = two_class_config();
    let out = run(&[presets::birds()], &vec![0; cfg.peers], &cfg, 7);
    let (fast, slow) = fast_slow_split(&out);
    assert!(fast > slow, "fast {fast} vs slow {slow}");
    // And slow peers are not starved to zero: they trade within their
    // own class.
    assert!(slow > 0.0);
}

#[test]
fn slow_peers_fare_relatively_better_under_random_ranking() {
    // Random ranking ignores rates, so it redistributes toward slow peers
    // compared to fastest-first — the intuition behind Leong et al. [15]
    // ("winner doesn't have to take all"), which the paper's I6 encodes.
    let cfg = two_class_config();
    let ratio = |p, seed| {
        let out = run(&[p], &vec![0; cfg.peers], &cfg, seed);
        let (fast, slow) = fast_slow_split(&out);
        slow / fast.max(1e-9)
    };
    let mut random_share = 0.0;
    let mut fastest_share = 0.0;
    for seed in 0..3 {
        random_share += ratio(presets::random_rank(), seed);
        fastest_share += ratio(presets::bittorrent(), seed);
    }
    assert!(
        random_share > fastest_share,
        "random {random_share} should favor slow peers over fastest {fastest_share}"
    );
}

#[test]
fn freeriding_minority_exploits_bittorrent_optimism() {
    // Locher et al. [17]: free riding in BitTorrent is cheap. A 10%
    // free-riding minority still downloads (optimistic unchokes feed it),
    // though far less than the cooperators.
    let cfg = SimConfig {
        peers: 40,
        rounds: 300,
        ..SimConfig::default()
    };
    let protos = [presets::bittorrent(), presets::freerider()];
    // Group 1 (freeriders) occupies the first 4 slots.
    let assignment: Vec<usize> = (0..cfg.peers).map(|i| usize::from(i < 4)).collect();
    let out = run(&protos, &assignment, &cfg, 11);
    let freerider_mean = out.group_means[1];
    let cooperator_mean = out.group_means[0];
    assert!(freerider_mean > 0.0, "optimistic unchokes should leak data");
    assert!(
        cooperator_mean > freerider_mean,
        "cooperators {cooperator_mean} must beat freeriders {freerider_mean}"
    );
}
