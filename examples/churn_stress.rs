//! Fault injection: how do the named protocols hold up under peer churn?
//!
//! The paper re-ran the whole-space performance sweep under churn rates
//! 0.01 and 0.1 per round (§4.4); this example stresses the named clients
//! across a wider range, including session-length churn.
//!
//! ```sh
//! cargo run --release --example churn_stress
//! ```

use dsa_swarm::engine::{run, SimConfig};
use dsa_swarm::metrics::utilization;
use dsa_swarm::presets;
use dsa_workloads::churn::ChurnModel;

fn main() {
    let protocols = [
        ("BitTorrent", presets::bittorrent()),
        ("Birds", presets::birds()),
        ("Loyal-When-needed", presets::loyal_when_needed()),
        ("Sort-S", presets::sort_s()),
    ];
    let churns = [
        ("none", ChurnModel::None),
        ("0.01/round", ChurnModel::PerRound { rate: 0.01 }),
        ("0.1/round", ChurnModel::PerRound { rate: 0.1 }),
        ("session~50", ChurnModel::Session { mean_rounds: 50.0 }),
    ];

    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "protocol", churns[0].0, churns[1].0, churns[2].0, churns[3].0
    );
    for (name, proto) in protocols {
        let mut row = format!("{name:<20}");
        for (_, churn) in churns {
            let config = SimConfig {
                churn,
                rounds: 300,
                ..SimConfig::default()
            };
            // Average utilization over three seeds.
            let mean: f64 = (0..3)
                .map(|seed| utilization(&run(&[proto], &vec![0; config.peers], &config, seed)))
                .sum::<f64>()
                / 3.0;
            row.push_str(&format!(" {mean:>12.3}"));
        }
        println!("{row}");
    }
    println!("\n(values are population utilization: throughput / mean capacity)");
}
