//! Section 2 walkthrough: the BitTorrent Dilemma, the analytical class
//! model, and the Appendix equilibrium results.
//!
//! ```sh
//! cargo run --release --example bittorrent_nash
//! ```

use dsa_gametheory::analytics;
use dsa_gametheory::classes::ClassParams;
use dsa_gametheory::game::Action;
use dsa_gametheory::games;
use dsa_gametheory::nash;

fn main() {
    let (f, s) = (10.0, 4.0);

    // Figure 1(a): the BitTorrent Dilemma between a fast and a slow peer.
    let bt = games::bittorrent_dilemma(f, s);
    println!("{bt}");
    println!(
        "fast dominant strategy: {:?}; slow dominant strategy: {:?}",
        bt.dominant_row().map(|(a, _)| a),
        bt.dominant_col().map(|(a, _)| a),
    );
    println!(
        "⇒ equilibrium outcome (fast defects, slow cooperates) is Nash: {}\n",
        bt.is_nash(Action::Defect, Action::Cooperate)
    );

    // Figure 1(c): Birds re-prices the slow peer's opportunity costs.
    let birds = games::birds(f, s);
    println!("{birds}");
    println!(
        "now both defect on the other class: {}\n",
        birds.is_nash(Action::Defect, Action::Defect)
    );

    // Section 2.2: expected game wins in a 50-peer swarm.
    let params = ClassParams::example_swarm();
    let bt_exp = analytics::bittorrent(&params);
    let birds_exp = analytics::birds(&params);
    println!(
        "expected wins per period (N={} U_r={}):",
        params.total(),
        params.unchoke_slots
    );
    println!(
        "  BitTorrent: {:.3} (reciprocation {:.3}, free {:.3})",
        bt_exp.total(),
        bt_exp.total_reciprocation(),
        bt_exp.total_free()
    );
    println!(
        "  Birds     : {:.3} (reciprocation {:.3}, free {:.3})\n",
        birds_exp.total(),
        birds_exp.total_reciprocation(),
        birds_exp.total_free()
    );

    // Appendix: deviation analysis.
    let d1 = nash::birds_deviant_in_bt_swarm(&params);
    println!(
        "one Birds deviant among BitTorrent peers: deviant wins {:.3} vs incumbent {:.3}",
        d1.deviant, d1.incumbent
    );
    println!(
        "⇒ BitTorrent is{} a Nash equilibrium",
        if nash::bittorrent_is_nash(&params) {
            ""
        } else {
            " NOT"
        }
    );
    let d2 = nash::bt_deviant_in_birds_swarm(&params);
    println!(
        "one BitTorrent deviant among Birds peers : deviant wins {:.3} vs incumbent {:.3}",
        d2.deviant, d2.incumbent
    );
    println!(
        "⇒ Birds is{} a Nash equilibrium",
        if nash::birds_is_nash(&params) {
            ""
        } else {
            " NOT"
        }
    );
}
