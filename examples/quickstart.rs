//! Quickstart: apply the PRA quantification to a handful of file-swarming
//! protocols and print their Performance / Robustness / Aggressiveness.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsa_core::pra::{quantify, PraConfig};
use dsa_core::tournament::OpponentSampling;
use dsa_swarm::adapter::SwarmSim;
use dsa_swarm::engine::SimConfig;
use dsa_swarm::presets;

fn main() {
    // 1. Pick the domain simulator: the paper's cycle-based file-swarming
    //    model (50 peers, Piatek et al. bandwidths).
    let sim = SwarmSim {
        config: SimConfig {
            rounds: 150, // laptop-friendly; the paper uses 500
            ..SimConfig::default()
        },
    };

    // 2. Choose the protocols to analyze — here the named §5 clients plus
    //    a free-rider.
    let protocols = vec![
        presets::bittorrent(),
        presets::birds(),
        presets::loyal_when_needed(),
        presets::sort_s(),
        presets::random_rank(),
        presets::freerider(),
    ];
    let names = [
        "BitTorrent",
        "Birds",
        "Loyal-When-needed",
        "Sort-S",
        "Random",
        "Freerider",
    ];

    // 3. Run the PRA quantification. With six protocols the tournament is
    //    exhaustive: every protocol meets every other.
    let config = PraConfig {
        performance_runs: 5,
        encounter_runs: 3,
        sampling: OpponentSampling::Exhaustive,
        threads: 0,
        seed: 42,
        ..PraConfig::default()
    };
    let results = quantify(&sim, &protocols, &config);

    // 4. Inspect the PRA cube.
    println!(
        "{:<20} {:>12} {:>11} {:>15}",
        "protocol", "Performance", "Robustness", "Aggressiveness"
    );
    for (i, name) in names.iter().enumerate() {
        let p = results.point(i);
        println!(
            "{:<20} {:>12.3} {:>11.3} {:>15.3}",
            name, p.performance, p.robustness, p.aggressiveness
        );
    }

    let best_perf = results.ranked_by(|p| p.performance)[0];
    let best_rob = results.ranked_by(|p| p.robustness)[0];
    println!("\nbest performance : {}", names[best_perf]);
    println!("best robustness  : {}", names[best_rob]);
}
