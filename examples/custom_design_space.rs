//! Applying DSA to a different domain: gossip protocols (the Section 3.1
//! example), plus heuristic exploration of the space (§7 future work).
//!
//! This is the template for plugging *your own* system into the
//! framework: implement [`dsa_core::sim::EncounterSim`] for a simulator
//! of your domain, enumerate your protocols, and everything else — the
//! PRA quantification, tournaments, search — comes for free.
//!
//! ```sh
//! cargo run --release --example custom_design_space
//! ```

use dsa_core::pra::{quantify, PraConfig};
use dsa_core::search;
use dsa_core::sim::EncounterSim;
use dsa_core::tournament::OpponentSampling;
use dsa_gossip::engine::GossipSim;
use dsa_gossip::protocol::{design_space, GossipProtocol};

fn main() {
    let sim = GossipSim::default();
    let protocols: Vec<GossipProtocol> = GossipProtocol::all().collect();
    println!(
        "gossip design space: {} protocols over 4 dimensions",
        protocols.len()
    );

    // Exhaustive PRA over the (small) space.
    let config = PraConfig {
        performance_runs: 3,
        encounter_runs: 1,
        sampling: OpponentSampling::Sampled(24),
        threads: 0,
        seed: 7,
        ..PraConfig::default()
    };
    let results = quantify(&sim, &protocols, &config);
    let best_perf = results.ranked_by(|p| p.performance)[0];
    let best_rob = results.ranked_by(|p| p.robustness)[0];
    println!("best performance: {}", protocols[best_perf]);
    println!("best robustness : {}", protocols[best_rob]);

    // Heuristic exploration: find a good protocol with a fraction of the
    // evaluations an exhaustive sweep needs.
    let space = design_space();
    let objective = |idx: usize| sim.run_homogeneous(&GossipProtocol::from_index(idx), config.seed);
    let outcome = search::hill_climb(&space, objective, 3, 60, 11);
    println!(
        "hill-climb found {} with {} evaluations (space size {})",
        GossipProtocol::from_index(outcome.best_index),
        outcome.evaluations,
        space.size()
    );
}
