//! Evolutionary justification of the Section 2 equilibria: replicator
//! dynamics and Moran fixation over the BitTorrent Dilemma.
//!
//! The paper's equilibrium claims are static; Mailath [19] (cited in §1)
//! asks when evolutionary dynamics actually select Nash equilibria. Here
//! we treat "slow peer cooperates" vs "slow peer defects" as competing
//! behaviors in the slow class and watch which one spreads under the
//! Figure 1 payoffs.
//!
//! ```sh
//! cargo run --release --example evolutionary_dynamics
//! ```

use dsa_gametheory::evolution::{moran_fixation, replicator_trajectory};
use dsa_gametheory::game::Action;
use dsa_gametheory::games;
use dsa_workloads::rng::Xoshiro256pp;

fn main() {
    let (f, s) = (10.0, 4.0);

    // Column-player (slow peer) payoff matrices against a fast class that
    // plays its dominant strategy (Defect): under Fig 1(a) pricing the
    // slow peers' C-vs-D competition has payoffs from the slow column...
    // We instead compare slow-peer behaviors within each pricing directly.
    for (label, game) in [
        (
            "Figure 1(a) pricing (BitTorrent Dilemma)",
            games::bittorrent_dilemma(f, s),
        ),
        ("Figure 1(c) pricing (Birds)", games::birds(f, s)),
    ] {
        // Payoff of slow behavior X against slow behavior Y is evaluated
        // against the fast class's dominant response, plus the same-class
        // fallback the paper describes: cooperators pair with cooperators.
        let coop = game.payoff(Action::Defect, Action::Cooperate).1; // slow C vs defecting fast
        let defect = game.payoff(Action::Cooperate, Action::Defect).1; // slow D grabbing optimistic unchokes
                                                                       // 2x2 population game between slow-cooperators and slow-defectors.
        let payoff = vec![vec![coop, coop], vec![defect, defect]];

        let trajectory = replicator_trajectory(&payoff, &[0.99, 0.01], 200);
        let final_defector_share = trajectory.last().unwrap()[1];
        println!("{label}:");
        println!("  slow-C payoff {coop:.1}, slow-D payoff {defect:.1}");
        println!(
            "  replicator: 1% defector seed grows to {:.1}% after 200 generations",
            final_defector_share * 100.0
        );

        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let fixation = moran_fixation(&payoff, 25, 2000, &mut rng);
        println!("  Moran (n=25): single defector mutant fixes with probability {fixation:.3}\n");
    }

    println!(
        "Under (a) the defecting slow peer is selected for — BitTorrent's slow-peer \
         cooperation is evolutionarily unstable, matching the Appendix result that a \
         Birds deviant profits. Under (c) defection is already the incumbent behavior."
    );
}
