//! Section 5 in miniature: pit DSA-discovered clients against the
//! reference BitTorrent implementation in the piece-level swarm
//! simulator and report download times.
//!
//! ```sh
//! cargo run --release --example swarm_validation
//! ```

use dsa_btsim::choker::ClientKind;
use dsa_btsim::config::BtConfig;
use dsa_btsim::experiment::{homogeneous_runs, mixed_runs};
use dsa_stats::ci::ConfidenceInterval;

fn main() {
    let config = BtConfig::default(); // 50 leechers, 128 KBps seed, 5 MB file
    let runs = 5;

    println!("homogeneous swarms ({} runs each):", runs);
    for kind in ClientKind::ALL {
        let times = homogeneous_runs(kind, runs, &config, 1);
        let ci = ConfidenceInterval::ci95(&times);
        println!(
            "  {:<20} {:>7.1} s ± {:.1}",
            kind.name(),
            ci.mean,
            ci.half_width
        );
    }

    println!("\n50/50 encounters against reference BitTorrent:");
    for kind in [
        ClientKind::Birds,
        ClientKind::LoyalWhenNeeded,
        ClientKind::SortS,
    ] {
        let (variant, bt) = mixed_runs(kind, ClientKind::BitTorrent, 0.5, runs, &config, 2);
        let vc = ConfidenceInterval::ci95(&variant);
        let bc = ConfidenceInterval::ci95(&bt);
        println!(
            "  {:<20} {:>7.1} s vs BitTorrent {:>7.1} s → {}",
            kind.name(),
            vc.mean,
            bc.mean,
            if vc.mean < bc.mean {
                "variant faster"
            } else {
                "BitTorrent faster"
            }
        );
    }
}
